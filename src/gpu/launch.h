// Pair-kernel launch configuration, statistics, and leaf-owner plans.
//
// This header is the policy half of the launch API: what to run (mode),
// how to schedule it across pool workers (schedule), and the precomputed
// owner-leaf work lists (LaunchPlan) that make the leaf-owner schedule
// deterministic. The execution half — the warp-split and naive drivers
// plus launch_pair_kernel itself — lives in gpu/warp.h.
//
// Scheduling (see DESIGN.md, "Node-level threading model"):
//
//  * kLeafOwner (default) — one task per OWNER leaf. The plan lists, for
//    every leaf, the ordered (partner, side) tiles that accumulate onto
//    it: a self pair contributes one both-sides tile walk, a cross pair
//    (A, B) contributes an i-side walk to owner A and a j-side walk to
//    owner B. Each particle is written by exactly one owner task, and the
//    entries of an owner are ordered by pair-list index, so the store
//    sequence seen by any particle equals the serial sequence — parallel
//    results are bitwise identical to serial with NO store buffering and
//    no serial replay tax.
//
//  * kDeferredStore — PR 2's chunked pair scheduler: stores are captured
//    into per-chunk buffers and replayed in chunk order on the calling
//    thread. Kept as the comparison baseline (bench/launch_schedule) and
//    as a fallback; transient memory is O(interactions) per launch vs.
//    zero for kLeafOwner.
//
//  * kSimd — the leaf-owner decomposition with the inner half-warp tile
//    evaluated simd::kWidth lanes per instruction (gpu/warp_simd.h).
//    Work distribution, store ownership, and per-accumulator operand
//    order are identical to kLeafOwner, so results stay bitwise identical
//    to serial by default (simd_math = kExact); simd_math = kFused opts
//    into real FMA under an explicit ULP gate. Requires a SIMD-enabled
//    build (simd::kAvailable), warp-split mode, and a power-of-two
//    warp_size; kernels without a SIMD form fall back to scalar tiles.
//
// A LaunchPlan depends only on (mesh, pair list) — not on the kernel, the
// thread count, or the launch mode — so one plan is shared by the
// density / CRK-moment / momentum-energy passes of a hydro force
// evaluation, and by any future subgrid pass over the same pair list.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "gpu/simd.h"

namespace crkhacc::tree {
class ChainingMesh;
}

namespace crkhacc::gpu {

enum class LaunchMode { kNaive, kWarpSplit };

/// How launch_pair_kernel distributes pair work over pool workers.
enum class LaunchSchedule { kLeafOwner, kDeferredStore, kSimd };

/// Arithmetic contract of the kSimd schedule's vector kernels.
///  * kExact — every a*b+c is mul then add (two roundings): bitwise
///    identical to the scalar kernels. The default.
///  * kFused — real FMA (one rounding): faster, not bitwise vs. scalar;
///    covered by the explicit per-field ULP gates in tests/test_simd and
///    bench/simd_lanes.
enum class SimdMath { kExact, kFused };

/// Launch policy for launch_pair_kernel. Replaces the old positional
/// (warp_size, mode) arguments; designated initializers keep call sites
/// readable: LaunchConfig{.warp_size = 32, .mode = LaunchMode::kNaive}.
struct LaunchConfig {
  std::uint32_t warp_size = 64;
  LaunchMode mode = LaunchMode::kWarpSplit;
  LaunchSchedule schedule = LaunchSchedule::kLeafOwner;
  SimdMath simd_math = SimdMath::kExact;  ///< only read by kSimd launches

  /// nullptr if the config is usable, else a human-readable reason.
  /// warp_size < 2 is rejected for BOTH modes: the warp-split half-warp
  /// w = warp_size / 2 would be zero and the tile loops could never
  /// advance (ci += w), hanging the launch.
  const char* invalid_reason() const {
    if (warp_size < 2) {
      return "warp_size must be >= 2 (half-warp w = warp_size / 2 would be "
             "0 and the warp-split tile loop could not advance)";
    }
    if (schedule == LaunchSchedule::kSimd) {
      if (!simd::kAvailable) {
        return "launch_schedule simd requires a SIMD-enabled build "
               "(configure with CRKHACC_ENABLE_SIMD=ON)";
      }
      if (mode == LaunchMode::kNaive) {
        return "launch_schedule simd vectorizes warp-split tiles; "
               "launch_mode naive has no lanes to vectorize";
      }
      if ((warp_size & (warp_size - 1)) != 0) {
        return "launch_schedule simd requires a power-of-two warp_size "
               "(the lane rotation indexes (l + t) mod W)";
      }
    }
    return nullptr;
  }
};

/// Merge policy for combining per-task LaunchStats into a launch total.
///  * kAccumulate — sum everything (seconds included): combining stats of
///    launches that ran back to back.
///  * kExclusive — sum the work counters but keep the target's timing
///    (seconds, flops): folding per-worker stats of ONE launch into its
///    total, whose wall clock is measured once around the whole launch.
enum class MergeTiming { kAccumulate, kExclusive };

struct LaunchStats {
  std::uint64_t interactions = 0;   ///< ordered pair evaluations
  std::uint64_t global_loads = 0;   ///< State loads from particle arrays
  std::uint64_t partial_evals = 0;  ///< separable-term computations
  std::uint64_t stores = 0;         ///< accumulator write-backs
  double flops = 0.0;
  double seconds = 0.0;
  std::size_t register_bytes_per_thread = 0;
  /// High-watermark of deferred-store buffer bytes held at once by this
  /// launch (0 on the leaf-owner schedule and on serial launches — they
  /// buffer nothing). Max-merged, like register_bytes_per_thread.
  std::uint64_t store_buffer_bytes = 0;

  LaunchStats& operator+=(const LaunchStats& o) {
    interactions += o.interactions;
    global_loads += o.global_loads;
    partial_evals += o.partial_evals;
    stores += o.stores;
    flops += o.flops;
    seconds += o.seconds;
    register_bytes_per_thread =
        std::max(register_bytes_per_thread, o.register_bytes_per_thread);
    store_buffer_bytes = std::max(store_buffer_bytes, o.store_buffer_bytes);
    return *this;
  }

  /// All merging routes through operator+= so bench totals and unit-test
  /// totals cannot drift; the policy only decides what happens to the
  /// timing-derived fields afterwards.
  LaunchStats& merge(const LaunchStats& o, MergeTiming timing) {
    const double outer_seconds = seconds;
    const double outer_flops = flops;
    *this += o;
    if (timing == MergeTiming::kExclusive) {
      seconds = outer_seconds;
      flops = outer_flops;
    }
    return *this;
  }
};

/// Deterministic owner-leaf work lists for one (mesh, pair list).
///
/// CSR layout: owners_ holds the leaves that appear in at least one pair
/// (ascending); the entries of owners_[t] are
/// entries_[entry_begin_[t] .. entry_begin_[t+1]), ordered by the index q
/// of the pair they came from. That per-owner order is what makes the
/// leaf-owner schedule bitwise reproducible: a particle of leaf L is
/// stored to only by L's task, in the same tile order as the serial
/// pair-by-pair walk.
class LaunchPlan {
 public:
  using Pair = std::pair<std::uint32_t, std::uint32_t>;

  /// Which half of a pair's evaluation an owner performs.
  enum class Side : std::uint8_t {
    kBoth,   ///< self pair (L, L): the full both-sides tile walk
    kISide,  ///< cross pair (owner, partner): accumulate onto owner = i
    kJSide,  ///< cross pair (partner, owner): accumulate onto owner = j
  };

  struct Entry {
    std::uint32_t partner = 0;
    Side side = Side::kBoth;
  };

  LaunchPlan() = default;

  /// Pairs must satisfy first <= second with both < cm.num_leaves() (as
  /// produced by ChainingMesh::interaction_pairs). The pair list is
  /// copied so the plan also serves serial launches (which run in
  /// canonical pair order) and the deferred-store schedule.
  LaunchPlan(const tree::ChainingMesh& cm, std::span<const Pair> pairs);

  /// Rebuild a plan from pre-extracted owner-task CSRs — the receive
  /// side of work-packet migration (core/load_balancer.h). The caller
  /// guarantees the CSRs describe tasks in the donor plan's owner order
  /// with entries in the donor's per-owner pair order; the resulting
  /// plan has no pair list, so it can only drive owner-task launches
  /// (gpu::launch_owner_tasks), never the serial pair-order path.
  static LaunchPlan from_owner_tasks(std::vector<std::uint32_t> owners,
                                     std::vector<std::uint32_t> entry_begin,
                                     std::vector<Entry> entries);

  std::size_t num_owners() const { return owners_.size(); }
  std::uint32_t owner(std::size_t t) const { return owners_[t]; }
  std::span<const Entry> entries(std::size_t t) const {
    return {entries_.data() + entry_begin_[t],
            entry_begin_[t + 1] - entry_begin_[t]};
  }
  std::size_t num_entries() const { return entries_.size(); }
  std::span<const Pair> pairs() const { return pairs_; }

 private:
  std::vector<std::uint32_t> owners_;
  std::vector<std::uint32_t> entry_begin_;  ///< owners_.size() + 1 offsets
  std::vector<Entry> entries_;
  std::vector<Pair> pairs_;
};

}  // namespace crkhacc::gpu
