#include "subgrid/cooling.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "cosmology/units.h"
#include "util/assertions.h"

namespace crkhacc::subgrid {
namespace {

// Unit conversions (code units: Mpc/h, km/s, 1e10 Msun/h).
constexpr double kMsun_g = 1.989e33;
constexpr double kMpc_cm = 3.0857e24;
constexpr double kProtonMass_g = 1.6726e-24;
constexpr double kSolarMetallicity = 0.02;

}  // namespace

double rho_code_to_cgs(double rho_code, double h) {
  return rho_code * h * h * 1e10 * kMsun_g / (kMpc_cm * kMpc_cm * kMpc_cm);
}

double n_hydrogen_cgs(double rho_proper_code, double h, double x_hydrogen) {
  return x_hydrogen * rho_code_to_cgs(rho_proper_code, h) / kProtonMass_g;
}

double erg_to_code_energy(double erg, double h) {
  // Code energy unit: (1e10 Msun / h) * (km/s)^2 = 1.989e53 / h erg.
  return erg * h / (1e10 * kMsun_g * 1e10);
}

CoolingTable::CoolingTable(const CoolingConfig& config) : config_(config) {
  primordial_.resize(kBins);
  metal_.resize(kBins);
  for (int i = 0; i < kBins; ++i) {
    const double log_t = kLogTMin + (kLogTMax - kLogTMin) * i / (kBins - 1);
    const double t = std::pow(10.0, log_t);
    primordial_[i] = lambda_primordial(t);
    // Metal-line bump centered at log T ~ 5.4 (O, C, Ne, Fe lines), in
    // erg cm^3/s at solar metallicity; exceeds the primordial curve
    // there, as in tabulated cooling functions.
    const double bump = (t > 1e4) ? 1.0e-21 * std::exp(-0.5 * std::pow(
                                                 (log_t - 5.4) / 0.7, 2.0))
                                  : 0.0;
    // Plus high-T metal brems enhancement, mild.
    const double high_t = (t > 1e6) ? 2.0e-27 * std::sqrt(t) * 0.3 : 0.0;
    metal_[i] = bump + high_t;
  }
}

double CoolingTable::lambda_primordial(double t) const {
  if (t < 1.0e4) return 0.0;  // neutral below 1e4 K
  // Approximate CIE neutral fraction: collisional ionization wipes out
  // H I above ~2e4 K, which is what shuts line cooling off at high T and
  // produces the characteristic dip near 1e7 K before bremsstrahlung
  // takes over.
  const double neutral_fraction = 1.0 / (1.0 + std::pow(t / 1.5e4, 2.5));
  // Collisional excitation of H (Ly-alpha): sharp turn-on above 1e4 K.
  const double line = 7.5e-19 * std::exp(-118348.0 / t) * neutral_fraction /
                      (1.0 + std::sqrt(t / 1.0e5));
  // He contribution, shifted peak.
  const double he_line = 5.5e-19 * std::exp(-473638.0 / t) *
                         neutral_fraction /
                         (1.0 + std::sqrt(t / 1.0e5)) * 0.25;
  // Free-free.
  const double brems = 2.3e-27 * std::sqrt(t);
  return line + he_line + brems;
}

double CoolingTable::lambda(double temperature_K, double metallicity) const {
  if (!(temperature_K > 0.0)) return 0.0;  // negated: also rejects NaN
  const double log_t = std::log10(temperature_K);
  // Clamp in double space: a corrupt internal energy can push pos past
  // INT_MAX, where the int cast below is undefined.
  const double pos =
      std::clamp((log_t - kLogTMin) / (kLogTMax - kLogTMin) * (kBins - 1),
                 0.0, static_cast<double>(kBins - 1));
  if (pos <= 0.0) return 0.0;
  const int lo = std::min(static_cast<int>(pos), kBins - 2);
  const double frac = std::min(pos - lo, 1.0);
  const double prim = primordial_[lo] * (1.0 - frac) + primordial_[lo + 1] * frac;
  const double met = metal_[lo] * (1.0 - frac) + metal_[lo + 1] * frac;
  return prim + met * (metallicity / kSolarMetallicity);
}

double CoolingTable::floor_K(double a) const {
  const double z = 1.0 / a - 1.0;
  if (z <= config_.z_reion) return config_.t_floor_K;
  // Pre-reionization adiabatic IGM floor ~ (1+z)^2 scaled from ~170 K at
  // z = 9 (decoupling-era residual heat).
  return 170.0 * std::pow((1.0 + z) / 10.0, 2.0);
}

double CoolingTable::cooling_time(double rho_com, double u, double metallicity,
                                  double a) const {
  if (!config_.enabled || u <= 0.0 || rho_com <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  const double t_K = units::temperature_K(u, units::kMuIonized);
  const double lam = lambda(t_K, metallicity);
  if (lam <= 0.0) return std::numeric_limits<double>::infinity();
  const double rho_cgs = rho_code_to_cgs(rho_com / (a * a * a), config_.h);
  const double n_h = config_.x_hydrogen * rho_cgs / kProtonMass_g;
  // du/dt [erg/g/s] = Lambda n_H^2 / rho.
  const double dudt_cgs = lam * n_h * n_h / rho_cgs;
  const double u_cgs = u * 1.0e10;  // (km/s)^2 -> erg/g
  const double t_cool_s = u_cgs / dudt_cgs;
  // seconds -> code time (Mpc/h / km/s).
  return t_cool_s / (units::kMpcOverKmS_seconds / config_.h);
}

double CoolingTable::cool(double u, double rho_com, double metallicity,
                          double a, double dt) const {
  if (!config_.enabled) return std::max(u, 0.0);
  const double u_floor =
      units::internal_energy(floor_K(a), units::kMuIonized);
  if (u < u_floor) {
    // UV-background photoheating: relax up toward the floor on the
    // heating timescale (~1e-4 code time units ~ 100 Myr).
    constexpr double kUvHeatingTime = 1e-4;
    return u_floor + (u - u_floor) * std::exp(-dt / kUvHeatingTime);
  }
  const double t_cool = cooling_time(rho_com, u, metallicity, a);
  if (!std::isfinite(t_cool) || t_cool <= 0.0) {
    return std::max(u, 0.0);  // nothing to radiate
  }
  // Stable exponential decay toward the floor.
  const double decay = std::exp(-dt / t_cool);
  return u_floor + (u - u_floor) * decay;
}

}  // namespace crkhacc::subgrid
