// Global conservation diagnostics.
//
// Production runs track conserved quantities every step: a drifting mass
// budget or runaway momentum is the first sign of a decomposition or
// kernel bug long before it shows in science outputs. The tracker reduces
// per-species mass, momentum, kinetic/thermal energy and metal budgets
// over owned particles (allreduced so every rank sees the global values)
// and reports drifts relative to a reference snapshot.
#pragma once

#include <array>
#include <cstdint>

#include "comm/world.h"
#include "core/particles.h"

namespace crkhacc::core {

struct ConservationSnapshot {
  double mass_total = 0.0;
  double mass_gas = 0.0;
  double mass_stars = 0.0;
  double mass_bh = 0.0;
  double mass_dm = 0.0;
  std::array<double, 3> momentum{0.0, 0.0, 0.0};  ///< sum m v (peculiar)
  double kinetic_energy = 0.0;   ///< sum 1/2 m v^2
  double thermal_energy = 0.0;   ///< sum m u
  double metal_mass = 0.0;       ///< sum m Z (gas)
  double abs_momentum = 0.0;     ///< sum m |v| — scale for momentum gates
  std::int64_t count = 0;

  /// |sum m v| / sum m |v| — dimensionless momentum asymmetry; stays
  /// near zero for a momentum-conserving solver on an isotropic box.
  double momentum_asymmetry = 0.0;
};

/// Reduce the global conservation snapshot (collective: all ranks call).
ConservationSnapshot measure_conservation(comm::Communicator& comm,
                                          const Particles& particles);

/// Relative mass drift between two snapshots.
inline double mass_drift(const ConservationSnapshot& before,
                         const ConservationSnapshot& after) {
  if (before.mass_total <= 0.0) return 0.0;
  return (after.mass_total - before.mass_total) / before.mass_total;
}

}  // namespace crkhacc::core
