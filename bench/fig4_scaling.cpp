// Figure 4: strong and weak scaling of the solver.
//
// The paper scales CRK-HACC from 128 to 9,000 Frontier nodes, reporting
// 92% strong- and 95% weak-scaling efficiency and 46.6 billion particles
// processed per second at full scale. We reproduce the experiment's
// *shape* on the simulated machine: the identical rank program runs at
// 1..8 ranks with (weak) fixed per-rank load and (strong) fixed total
// load, timing the solver (short-range + spectral) over early high-z
// steps exactly as Section VI-A does.
//
// Note on the substitute machine: ranks are threads on one physical core,
// so ideal scaling keeps the particles/s *constant* for weak scaling
// (total work grows with ranks on fixed silicon) and shrinks wall time
// proportionally to work for strong scaling. Efficiencies are defined
// against those ideals — the communication/imbalance overheads measured
// are the same ones the real machine pays.
#include <cstdio>
#include <mutex>
#include <vector>

#include "common.h"
#include "comm/world.h"
#include "core/simulation.h"

using namespace crkhacc;

namespace {

struct ScalingPoint {
  int ranks;
  double solver_seconds;   ///< max over ranks
  std::uint64_t particles; ///< global particle count
  double gflops;           ///< aggregate kernel GFLOP executed
};

ScalingPoint run_case(int ranks, const core::SimConfig& config) {
  ScalingPoint point{ranks, 0.0, 0, 0.0};
  std::mutex mutex;
  comm::World world(ranks);
  world.run([&](comm::Communicator& comm) {
    core::SimContext ctx(config.threads);
    core::Simulation sim(ctx, comm, config);
    sim.initialize();
    for (int s = 0; s < config.num_pm_steps; ++s) {
      sim.step();
    }
    const double solver_seconds = sim.timers().total(timers::kShortRange) +
                                  sim.timers().total(timers::kLongRange) +
                                  sim.timers().total(timers::kTreeBuild);
    const double max_seconds =
        comm.allreduce_scalar(solver_seconds, comm::ReduceOp::kMax);
    std::int64_t owned = 0;
    const auto& p = sim.particles();
    for (std::size_t i = 0; i < p.size(); ++i) owned += p.is_owned(i);
    const auto total = comm.allreduce_scalar(owned, comm::ReduceOp::kSum);
    const double flops = comm.allreduce_scalar(sim.flops().total_flops(),
                                               comm::ReduceOp::kSum);
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lock(mutex);
      point.solver_seconds = max_seconds;
      point.particles = static_cast<std::uint64_t>(total);
      point.gflops = flops / 1e9;
    }
  });
  return point;
}

}  // namespace

int main() {
  const std::vector<int> rank_counts = {1, 2, 4, 8};

  bench::print_header("Fig. 4 — Weak scaling (fixed per-rank load)");
  std::printf("%-8s %-12s %-12s %-14s %-12s %-14s\n", "ranks", "particles",
              "solver[s]", "particles/s", "GFLOP/s", "efficiency");
  bench::print_rule();
  std::vector<ScalingPoint> weak;
  for (int ranks : rank_counts) {
    const auto config = bench::scaled_config(ranks, 8, /*hydro=*/true);
    weak.push_back(run_case(ranks, config));
    const auto& pt = weak.back();
    const double rate = static_cast<double>(pt.particles) *
                        config.num_pm_steps / pt.solver_seconds;
    // Weak ideal on shared silicon: constant aggregate GFLOP rate (the
    // extra ghost work of smaller subdomains is real work, as on the
    // production machine, and is charged to the rate, not to overhead).
    const double gflop_rate = pt.gflops / pt.solver_seconds;
    const double base_rate = weak.front().gflops / weak.front().solver_seconds;
    std::printf("%-8d %-12llu %-12.2f %-14.3e %-12.2f %-14.1f%%\n", ranks,
                static_cast<unsigned long long>(pt.particles),
                pt.solver_seconds, rate, gflop_rate,
                100.0 * gflop_rate / base_rate);
  }
  std::printf("\npaper: 95%% weak-scaling efficiency, 128 -> 9000 nodes; "
              "46.6e9 particles/s at full scale.\n\n");

  bench::print_header("Fig. 4 — Strong scaling (fixed total problem)");
  std::printf("%-8s %-12s %-12s %-12s %-14s %-12s\n", "ranks", "particles",
              "solver[s]", "GFLOP", "GFLOP/s", "efficiency");
  bench::print_rule();
  std::vector<ScalingPoint> strong;
  {
    // Fixed total: the 8-rank weak problem (np chosen for 8 ranks).
    auto config = bench::scaled_config(8, 8, /*hydro=*/true);
    for (int ranks : rank_counts) {
      strong.push_back(run_case(ranks, config));
      const auto& pt = strong.back();
      // Ghost layers make total work grow with rank count (as on the real
      // machine at shrinking subdomains); the FLOP rate isolates the
      // communication/synchronization overhead the figure probes.
      const double gflop_rate = pt.gflops / pt.solver_seconds;
      const double base_rate =
          strong.front().gflops / strong.front().solver_seconds;
      std::printf("%-8d %-12llu %-12.2f %-12.1f %-14.2f %-12.1f%%\n", ranks,
                  static_cast<unsigned long long>(pt.particles),
                  pt.solver_seconds, pt.gflops, gflop_rate,
                  100.0 * gflop_rate / base_rate);
    }
  }
  std::printf("\npaper: 92%% strong-scaling efficiency over nearly two "
              "orders of magnitude in node count.\n");
  std::printf("(efficiency = aggregate kernel-FLOP rate retained relative "
              "to 1 rank; ghost-layer growth at shrinking subdomains is\n"
              " real work and charged to the rate, so the loss isolates "
              "exchange/transpose/synchronization overhead — the quantity\n"
              " the paper's figure demonstrates.)\n");
  return 0;
}
