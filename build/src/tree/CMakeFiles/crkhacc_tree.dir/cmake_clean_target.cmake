file(REMOVE_RECURSE
  "libcrkhacc_tree.a"
)
