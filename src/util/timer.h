// Hierarchical wall-clock timers.
//
// The paper's time-to-solution breakdown (Fig. 5) is a per-component timer
// taxonomy: long-range solver, tree build, short-range solver, in situ
// analysis, I/O, and a miscellaneous remainder. TimerRegistry reproduces
// that taxonomy: named accumulating timers that can be snapshotted per PM
// step to build cumulative TTS curves.
#pragma once

#include <chrono>
#include <map>
#include <string>
#include <vector>

namespace crkhacc {

/// Monotonic wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}
  void reset() { start_ = Clock::now(); }
  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Named accumulating timers, keyed by component name.
///
/// Not thread-safe by design: each simulated rank owns its own registry,
/// mirroring per-rank MPI_Wtime timing in the paper. With the intra-node
/// ThreadPool this stays sound because all ScopedTimer/add() calls happen
/// on the rank's calling thread, *around* parallel regions — worker
/// threads never touch a registry. Per-worker timing lives in
/// ThreadPoolStats instead (merged by the pool itself); if a worker ever
/// needs named timers, give it a thread-local registry and merge() on the
/// calling thread.
class TimerRegistry {
 public:
  /// Add `seconds` to the named timer, creating it if absent.
  void add(const std::string& name, double seconds);

  /// Total accumulated seconds for `name` (0 if never recorded).
  double total(const std::string& name) const;

  /// Sum over all named timers.
  double grand_total() const;

  /// Fraction of grand_total() spent in `name`.
  double fraction(const std::string& name) const;

  /// All (name, seconds) pairs sorted by descending time.
  std::vector<std::pair<std::string, double>> sorted() const;

  /// Merge another registry into this one (used to aggregate ranks).
  void merge(const TimerRegistry& other);

  void clear() { timers_.clear(); }

 private:
  std::map<std::string, double> timers_;
};

/// RAII timer: adds elapsed time to `registry[name]` on destruction.
class ScopedTimer {
 public:
  ScopedTimer(TimerRegistry& registry, std::string name)
      : registry_(registry), name_(std::move(name)) {}
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TimerRegistry& registry_;
  std::string name_;
  Stopwatch watch_;
};

/// Canonical component names matching the paper's Fig. 5 taxonomy.
namespace timers {
inline constexpr const char* kLongRange = "long_range";
inline constexpr const char* kTreeBuild = "tree_build";
inline constexpr const char* kShortRange = "short_range";
inline constexpr const char* kAnalysis = "analysis";
inline constexpr const char* kIO = "io";
inline constexpr const char* kMisc = "misc";
}  // namespace timers

}  // namespace crkhacc
