# Empty compiler generated dependencies file for test_subgrid.
# This may be replaced when dependencies are built.
