#include "analysis/fof.h"

#include <algorithm>
#include <cmath>

#include "analysis/union_find.h"
#include "tree/lbvh.h"
#include "util/assertions.h"

namespace crkhacc::analysis {

FofResult fof(std::span<const float> x, std::span<const float> y,
              std::span<const float> z, float linking_length,
              std::size_t min_members) {
  const std::size_t n = x.size();
  CHECK(y.size() == n && z.size() == n);
  FofResult result;
  result.group_of.assign(n, FofResult::kUngrouped);
  if (n == 0) return result;

  const tree::Bvh bvh(x, y, z);
  UnionFind dsu(n);
  for (std::size_t i = 0; i < n; ++i) {
    bvh.radius_query(x[i], y[i], z[i], linking_length,
                     [&](std::uint32_t j) {
                       if (j > i) dsu.unite(static_cast<std::uint32_t>(i), j);
                     });
  }

  // Component roots -> dense group ids for components above threshold.
  std::vector<std::uint32_t> root(n);
  for (std::size_t i = 0; i < n; ++i) {
    root[i] = dsu.find(static_cast<std::uint32_t>(i));
  }
  std::vector<std::int32_t> group_of_root(n, FofResult::kUngrouped);
  std::vector<std::vector<std::uint32_t>> groups;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t r = root[i];
    if (dsu.component_size(r) < min_members) continue;
    if (group_of_root[r] == FofResult::kUngrouped) {
      group_of_root[r] = static_cast<std::int32_t>(groups.size());
      groups.emplace_back();
    }
    const auto g = group_of_root[r];
    groups[static_cast<std::size_t>(g)].push_back(static_cast<std::uint32_t>(i));
    result.group_of[i] = g;
  }

  // Largest-first ordering (stable ids re-mapped afterwards).
  std::vector<std::size_t> order(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) order[g] = g;
  std::sort(order.begin(), order.end(), [&groups](std::size_t a, std::size_t b) {
    return groups[a].size() > groups[b].size();
  });
  std::vector<std::int32_t> remap(groups.size());
  std::vector<std::vector<std::uint32_t>> sorted_groups(groups.size());
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    remap[order[rank]] = static_cast<std::int32_t>(rank);
    sorted_groups[rank] = std::move(groups[order[rank]]);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (result.group_of[i] != FofResult::kUngrouped) {
      result.group_of[i] = remap[static_cast<std::size_t>(result.group_of[i])];
    }
  }
  result.groups = std::move(sorted_groups);
  return result;
}

double fof_linking_length(double box, std::size_t n_global, double b_frac) {
  CHECK(n_global > 0);
  return b_frac * box / std::cbrt(static_cast<double>(n_global));
}

}  // namespace crkhacc::analysis
