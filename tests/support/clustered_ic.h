// Seeded clustered initial conditions shared by the load-balance tests,
// the property sweeps, and bench/fig4_scaling: two Plummer spheres at
// opposite corners of the box. With a Cartesian rank decomposition this
// is the canonical worst case for short-range work — the ranks holding
// the sphere cores see pair counts orders of magnitude above the
// mean — while staying fully deterministic (SplitMix64-seeded, fixed
// draw order, no wall-clock input).
#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "core/particles.h"
#include "util/rng.h"

namespace crkhacc::testsupport {

struct ClusteredIcConfig {
  double box = 32.0;          ///< periodic box side
  std::size_t count = 4096;   ///< total particles, alternated A/B
  double scale = 1.5;         ///< Plummer scale radius of each sphere
  double velocity = 5.0;      ///< isotropic Gaussian velocity dispersion
  double mass = 1.0;          ///< per-particle mass
  std::uint64_t seed = 1234;
  std::array<double, 3> center_a{8.0, 8.0, 16.0};
  std::array<double, 3> center_b{24.0, 24.0, 16.0};
  Species species = Species::kDarkMatter;
};

/// Deterministic two-Plummer-sphere particle cloud. Particle i goes to
/// sphere A when i is even, B when odd; radii follow the Plummer
/// cumulative-mass inversion r = scale / sqrt(u^(-2/3) - 1), directions
/// are isotropic, and positions wrap periodically into [0, box).
inline Particles clustered_two_sphere_ic(const ClusteredIcConfig& cfg) {
  SplitMix64 rng(cfg.seed);
  Particles p;
  for (std::size_t i = 0; i < cfg.count; ++i) {
    const auto& center = (i % 2 == 0) ? cfg.center_a : cfg.center_b;
    // Invert the Plummer cumulative mass profile; clamp u away from 1
    // so the radius stays bounded (the profile's tail is infinite).
    const double u = std::min(rng.next_double(), 0.999);
    const double r = cfg.scale / std::sqrt(std::pow(u, -2.0 / 3.0) - 1.0);
    // Isotropic direction from (cos theta, phi).
    const double ct = 2.0 * rng.next_double() - 1.0;
    const double st = std::sqrt(std::max(0.0, 1.0 - ct * ct));
    const double phi = 2.0 * 3.14159265358979323846 * rng.next_double();
    std::array<double, 3> pos{center[0] + r * st * std::cos(phi),
                              center[1] + r * st * std::sin(phi),
                              center[2] + r * ct};
    for (double& c : pos) {
      c = std::fmod(c, cfg.box);
      if (c < 0.0) c += cfg.box;
    }
    const auto idx = p.push_back(
        i, cfg.species, static_cast<float>(pos[0]), static_cast<float>(pos[1]),
        static_cast<float>(pos[2]),
        static_cast<float>(cfg.velocity * rng.next_gaussian()),
        static_cast<float>(cfg.velocity * rng.next_gaussian()),
        static_cast<float>(cfg.velocity * rng.next_gaussian()),
        static_cast<float>(cfg.mass));
    if (cfg.species == Species::kGas) {
      p.hsml[idx] = static_cast<float>(0.5 * cfg.scale);
      p.u[idx] = static_cast<float>(50.0 + 100.0 * rng.next_double());
    }
  }
  return p;
}

}  // namespace crkhacc::testsupport
