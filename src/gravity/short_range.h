// Short-range gravity: the direct particle-pair complement of the
// filtered PM solve.
//
// Within the chaining-mesh cutoff, each pair contributes the Newtonian
// force times the split factor f_s(r) (mesh/force_split.h), so that
// PM + short-range sums to the full 1/r^2 force. A Plummer softening
// regularizes close encounters at the force-resolution scale. Runs as a
// warp-split leaf-pair kernel like every other short-range operator.
#pragma once

#include <cmath>
#include <cstdint>

#include "comm/work_packets.h"
#include "core/particles.h"
#include "gpu/device.h"
#include "gpu/simd.h"
#include "gpu/warp.h"
#include "mesh/force_split.h"
#include "tree/chaining_mesh.h"

namespace crkhacc::gravity {

class ShortRangeKernel {
 public:
  static constexpr const char* kName = "gravity_short_range";
  static constexpr double kFlopsPerInteraction = 42.0;
  static constexpr double kFlopsPerPartial = 1.0;

  struct State {
    float x, y, z;
    float mass;
  };
  struct Partial {
    float m;  ///< g_j term: the partner's mass is all that is shuffled
  };
  struct Accum {
    float ax = 0.0f, ay = 0.0f, az = 0.0f;
  };

  /// `split` may be null for pure Newtonian pair forces (tests and
  /// non-cosmological problems); `accel_scale` should carry G and any
  /// cosmological factor (G / a^2 for comoving integrations);
  /// `softening` is the Plummer length; `cutoff` the interaction radius
  /// (<= chaining-mesh bin width).
  ShortRangeKernel(Particles& particles, const std::uint8_t* active,
                   const mesh::ForceSplit* split, float accel_scale,
                   float softening, float cutoff)
      : p_(particles),
        active_(active),
        split_(split),
        scale_(accel_scale),
        soft2_(softening * softening),
        cutoff2_(cutoff * cutoff) {}

  State load(std::uint32_t i) const {
    return State{p_.x[i], p_.y[i], p_.z[i], p_.mass[i]};
  }

  Partial partial(const State& s) const { return Partial{s.mass}; }

  void interact(const State& self, const Partial& /*self_p*/,
                const State& other, const Partial& other_p, Accum& acc) const {
    const float dx = self.x - other.x;
    const float dy = self.y - other.y;
    const float dz = self.z - other.z;
    const float r2 = dx * dx + dy * dy + dz * dz;
    if (r2 >= cutoff2_ || r2 <= 0.0f) return;
    const float r = std::sqrt(r2);
    const float soft_r2 = r2 + soft2_;
    const float inv_r3 = 1.0f / (soft_r2 * std::sqrt(soft_r2));
    const float fs =
        split_ ? static_cast<float>(split_->short_range_factor(r)) : 1.0f;
    // a_i = -m_j f_s(r) d_ij / r^3 (G and 1/a^2 applied at store).
    const float f = -other_p.m * fs * inv_r3;
    acc.ax += f * dx;
    acc.ay += f * dy;
    acc.az += f * dz;
  }

  void store(std::uint32_t i, const Accum& acc) {
    if (active_ && !active_[i]) return;
    p_.ax[i] += scale_ * acc.ax;
    p_.ay[i] += scale_ * acc.ay;
    p_.az[i] += scale_ * acc.az;
  }

  // --- kSimd surface (gpu/warp_simd.h). interact_simd mirrors interact's
  // expression DAG per lane: the early-out becomes a mask, stores blend.
  // Keep both bodies in lockstep.

  struct SimdLanes {
    gpu::simd::LaneArray x, y, z, m;
    void set(std::uint32_t k, const State& s, const Partial& p) {
      x[k] = s.x;
      y[k] = s.y;
      z[k] = s.z;
      m[k] = p.m;
    }
  };

  struct SimdAccum {
    gpu::simd::vfloat ax = gpu::simd::vzero();
    gpu::simd::vfloat ay = gpu::simd::vzero();
    gpu::simd::vfloat az = gpu::simd::vzero();
    Accum lane(std::uint32_t l) const {
      return Accum{gpu::simd::extract(ax, l), gpu::simd::extract(ay, l),
                   gpu::simd::extract(az, l)};
    }
  };

  template <typename Math>
  void interact_simd(const SimdLanes& self, std::uint32_t sb,
                     const SimdLanes& other, std::uint32_t ob,
                     gpu::simd::vmask live, SimdAccum& acc) const {
    namespace v = gpu::simd;
    const v::vfloat sx = v::load_aligned(self.x.data() + sb);
    const v::vfloat sy = v::load_aligned(self.y.data() + sb);
    const v::vfloat sz = v::load_aligned(self.z.data() + sb);
    const v::vfloat ox = v::loadu(other.x.data() + ob);
    const v::vfloat oy = v::loadu(other.y.data() + ob);
    const v::vfloat oz = v::loadu(other.z.data() + ob);
    const v::vfloat om = v::loadu(other.m.data() + ob);
    const v::vfloat dx = sx - ox;
    const v::vfloat dy = sy - oy;
    const v::vfloat dz = sz - oz;
    const v::vfloat r2 = Math::madd(dz, dz, Math::madd(dy, dy, dx * dx));
    live = live & v::cmp_lt(r2, v::broadcast(cutoff2_)) &
           v::cmp_gt(r2, v::vzero());
    // Fully-dead blocks skip the remaining math (and the split factor's
    // scalar erfc calls) — the scalar driver's early-out, block-wise.
    // Bitwise neutral: every op below is blended under `live`.
    if (v::mask_bits(live) == 0) return;
    const v::vfloat r = v::sqrt(r2);
    const v::vfloat soft_r2 = r2 + v::broadcast(soft2_);
    const v::vfloat inv_r3 = v::broadcast(1.0f) / (soft_r2 * v::sqrt(soft_r2));
    v::vfloat fs = v::broadcast(1.0f);
    if (split_) {
      // The split factor is double-precision erfc/exp scalar code; calling
      // it per live lane keeps kSimd bitwise identical to the scalar path
      // (split == nullptr launches stay fully vectorized).
      alignas(32) float rl[v::kWidth];
      alignas(32) float fl[v::kWidth];
      v::store(rl, r);
      const std::uint32_t bits = v::mask_bits(live);
      for (std::uint32_t l = 0; l < v::kWidth; ++l) {
        fl[l] = (bits >> l) & 1u
                    ? static_cast<float>(split_->short_range_factor(rl[l]))
                    : 1.0f;
      }
      fs = v::load_aligned(fl);
    }
    const v::vfloat f = v::neg(om) * fs * inv_r3;
    acc.ax = v::select(live, Math::madd(f, dx, acc.ax), acc.ax);
    acc.ay = v::select(live, Math::madd(f, dy, acc.ay), acc.ay);
    acc.az = v::select(live, Math::madd(f, dz, acc.az), acc.az);
  }

 private:
  Particles& p_;
  const std::uint8_t* active_;
  const mesh::ForceSplit* split_;
  float scale_;
  float soft2_;
  float cutoff2_;
};

struct GravityConfig {
  float softening = 0.05f;  ///< Plummer softening (code length)
  /// Pair-kernel launch policy (warp size, mode, pool schedule).
  gpu::LaunchConfig launch;
};

/// Evaluate the short-range gravity of all particles in `mesh` (built
/// over every species). Accumulates into ax/ay/az; `a` is the scale
/// factor (1 = non-cosmological => pure Newtonian requires split=null).
/// If `pairs` is non-null, uses the caller's (active-filtered) leaf pair
/// list instead of building one. With a pool, the launch follows
/// config.launch.schedule — owner-leaf accumulation by default — and is
/// bitwise identical to serial for any thread count.
gpu::LaunchStats compute_short_range(
    Particles& particles, const tree::ChainingMesh& mesh,
    const mesh::ForceSplit* split, const GravityConfig& config, double a,
    const std::uint8_t* active, gpu::FlopRegistry& flops,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>* pairs =
        nullptr,
    util::ThreadPool* pool = nullptr);

/// Donor-side launch of a caller-built plan under work-packet migration
/// (core/load_balancer.h): runs the owner-task decomposition, skipping
/// the tasks flagged in `skip_task` (indexed by task position, as
/// passed to gpu::launch_owner_tasks). Kernel construction matches
/// compute_short_range exactly, so the executed tasks are bitwise
/// identical to the unbalanced launch per particle.
gpu::LaunchStats compute_short_range_owner_tasks(
    Particles& particles, const tree::ChainingMesh& mesh,
    const gpu::LaunchPlan& plan, const mesh::ForceSplit* split,
    const GravityConfig& config, double a, const std::uint8_t* active,
    gpu::FlopRegistry& flops, const std::uint8_t* skip_task,
    util::ThreadPool* pool = nullptr);

/// Helper-side execution of a migrated work packet: rebuild the donor's
/// leaf ranges (tree::ChainingMesh::adopt) and owner tasks
/// (gpu::LaunchPlan::from_owner_tasks) on scratch particle state, run
/// the identical kernel (split/softening/launch policy are global
/// config, a comes with the packet), and return the owner-slot
/// accelerations. Scratch accumulators start at 0.0f — the same value
/// the donor's zeroed accumulators hold — so the returned values equal
/// the ones the donor's own launch would have produced, bit for bit.
comm::WorkReply execute_work_packet(const comm::WorkPacket& packet,
                                    const mesh::ForceSplit* split,
                                    const GravityConfig& config,
                                    gpu::FlopRegistry& flops,
                                    util::ThreadPool* pool = nullptr);

/// Reference O(N^2) Newtonian (or split) direct sum, for accuracy tests.
void direct_sum_reference(Particles& particles, const mesh::ForceSplit* split,
                          float softening, double accel_scale);

}  // namespace crkhacc::gravity
