file(REMOVE_RECURSE
  "libcrkhacc_integrator.a"
)
