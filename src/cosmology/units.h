// Code units and physical constants.
//
// CRK-HACC-style comoving units:
//   length   : comoving Mpc/h
//   velocity : peculiar km/s
//   mass     : 1e10 Msun/h
//   energy/mass (internal energy u) : (km/s)^2
//
// With these, H0 = 100 h km/s/Mpc == 100 in code units, and Newton's
// constant G = 43.0071 (km/s)^2 (Mpc/h) / (1e10 Msun/h).
#pragma once

namespace crkhacc::units {

/// Newton's constant in code units.
inline constexpr double kGravity = 43.0071;

/// Hubble constant in code units (always 100 because lengths carry h).
inline constexpr double kH0 = 100.0;

/// Critical density today in code units: 3 H0^2 / (8 pi G)
/// = 27.7536627 (1e10 Msun/h) / (Mpc/h)^3.
inline constexpr double kRhoCrit0 = 27.7536627;

/// Adiabatic index of a monatomic ideal gas.
inline constexpr double kGamma = 5.0 / 3.0;

/// Mean molecular weight: neutral primordial gas.
inline constexpr double kMuNeutral = 1.22;
/// Mean molecular weight: fully ionized primordial gas.
inline constexpr double kMuIonized = 0.59;

/// T[K] = (gamma-1) * mu * kProtonByBoltzmannKmS * u[(km/s)^2].
inline constexpr double kProtonByBoltzmannKmS = 121.14;

/// Convert internal energy (km/s)^2 to temperature in K.
inline constexpr double temperature_K(double u, double mu) {
  return (kGamma - 1.0) * mu * kProtonByBoltzmannKmS * u;
}

/// Convert temperature in K to internal energy (km/s)^2.
inline constexpr double internal_energy(double temperature_k, double mu) {
  return temperature_k / ((kGamma - 1.0) * mu * kProtonByBoltzmannKmS);
}

/// Seconds per (Mpc/h)/(km/s) "Hubble time unit", divided by h.
/// 1 Mpc = 3.0857e19 km, so 1 (Mpc/h)/(km/s) = 3.0857e19/h seconds.
inline constexpr double kMpcOverKmS_seconds = 3.0857e19;

/// Gigayears per code time unit (Mpc/h / km/s), times h.
inline constexpr double kMpcOverKmS_Gyr = 978.462;

}  // namespace crkhacc::units
