// SPH smoothing kernels.
//
// The cubic B-spline (M4) kernel with support radius 2h, the default in
// CRKSPH's reference implementation, plus the Wendland C4 kernel used for
// high-neighbor-count configurations (CRKSPH evaluates ~270 neighbors per
// particle; Wendland kernels resist the pairing instability there).
// All functions are float-typed: the short-range solver runs FP32.
#pragma once

#include <cmath>
#include <numbers>

namespace crkhacc::sph {

/// Cubic B-spline kernel W(r, h); support is r < 2h.
struct CubicSpline {
  static constexpr float kSupport = 2.0f;  ///< support radius in units of h

  /// Kernel value.
  static float w(float r, float h) {
    const float q = r / h;
    if (q >= 2.0f) return 0.0f;
    const float sigma = static_cast<float>(1.0 / std::numbers::pi) / (h * h * h);
    if (q < 1.0f) {
      return sigma * (1.0f - 1.5f * q * q + 0.75f * q * q * q);
    }
    const float t = 2.0f - q;
    return sigma * 0.25f * t * t * t;
  }

  /// Radial derivative dW/dr (<= 0 everywhere).
  static float dw_dr(float r, float h) {
    const float q = r / h;
    if (q >= 2.0f) return 0.0f;
    const float sigma = static_cast<float>(1.0 / std::numbers::pi) / (h * h * h);
    if (q < 1.0f) {
      return sigma * (-3.0f * q + 2.25f * q * q) / h;
    }
    const float t = 2.0f - q;
    return sigma * (-0.75f * t * t) / h;
  }
};

/// Wendland C4 kernel; support r < 2h (rescaled so h has the same meaning
/// as the cubic spline).
struct WendlandC4 {
  static constexpr float kSupport = 2.0f;

  static float w(float r, float h) {
    const float q = r / (2.0f * h);  // native Wendland variable in [0,1]
    if (q >= 1.0f) return 0.0f;
    const float sigma =
        static_cast<float>(495.0 / (32.0 * std::numbers::pi)) /
        (8.0f * h * h * h);
    const float omq = 1.0f - q;
    const float omq2 = omq * omq;
    const float omq6 = omq2 * omq2 * omq2;
    return sigma * omq6 * (1.0f + 6.0f * q + (35.0f / 3.0f) * q * q);
  }

  static float dw_dr(float r, float h) {
    const float q = r / (2.0f * h);
    if (q >= 1.0f) return 0.0f;
    const float sigma =
        static_cast<float>(495.0 / (32.0 * std::numbers::pi)) /
        (8.0f * h * h * h);
    const float omq = 1.0f - q;
    const float omq2 = omq * omq;
    const float omq5 = omq2 * omq2 * omq;
    // d/dq of omq^6 (1 + 6q + 35/3 q^2) = omq^5 (-56/3 q) (1 + 5 q)
    const float dwdq = sigma * omq5 * (-56.0f / 3.0f) * q * (1.0f + 5.0f * q);
    return dwdq / (2.0f * h);
  }
};

}  // namespace crkhacc::sph
