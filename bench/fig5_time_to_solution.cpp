// Figure 5 + Section VI-B: cumulative time-to-solution and multi-tier I/O.
//
// Reproduces, at miniature scale, the paper's end-to-end accounting:
//  * cumulative wall time per PM step, split into the Fig. 5 component
//    taxonomy {short-range, analysis, I/O, long-range, tree, misc};
//  * the component fractions next to the paper's values
//    {79.6%, 11.6%, 2.6%, 1.7%, 1.7%};
//  * NVMe vs PFS bandwidth per step and cumulative data written
//    (Fig. 5 bottom panel) on the throttled storage models;
//  * the hydro vs gravity-only cost ratio (paper: ~16x).
#include <cstdio>
#include <filesystem>
#include <memory>
#include <mutex>
#include <vector>

#include "common.h"
#include "comm/world.h"
#include "core/simulation.h"

using namespace crkhacc;

namespace {

struct StepTrace {
  std::uint64_t step;
  double z;
  double cumulative_seconds;
  double nvme_bw_mb_s;
  double pfs_bw_mb_s;
  double cumulative_gb;
};

}  // namespace

int main() {
  bench::print_header("Fig. 5 — time-to-solution and multi-tier I/O trace");

  const int ranks = 4;
  const std::string workdir =
      (std::filesystem::temp_directory_path() / "crkhacc_fig5").string();
  std::filesystem::remove_all(workdir);

  core::SimConfig config;
  config.np = 10;
  config.box = 20.0;
  config.ng = 20;
  config.rs_cells = 1.0;
  config.z_init = 30.0;
  config.z_final = 1.0;
  config.num_pm_steps = 8;
  config.bins.max_depth = 4;
  config.hydro = true;
  config.subgrid_on = true;
  config.analysis_every = 1;
  config.seed = 55;

  // Storage model: per-rank NVMe at 400 MB/s; one shared PFS at 60 MB/s.
  io::ThrottledStore pfs(
      io::StoreConfig{workdir + "/pfs", 60e6, 0.002, /*shared=*/true});
  std::vector<std::unique_ptr<io::ThrottledStore>> nvmes;
  for (int r = 0; r < ranks; ++r) {
    nvmes.push_back(std::make_unique<io::ThrottledStore>(io::StoreConfig{
        workdir + "/nvme" + std::to_string(r), 400e6, 0.0, false}));
  }

  std::vector<StepTrace> trace;
  TimerRegistry timers;
  double gravity_only_seconds = 0.0;
  double hydro_seconds = 0.0;
  std::mutex mutex;

  comm::World world(ranks);
  world.run([&](comm::Communicator& comm) {
    io::MultiTierWriter writer(*nvmes[static_cast<std::size_t>(comm.rank())],
                               pfs, io::MultiTierConfig{comm.rank(), 3});
    core::SimContext ctx(config.threads);
    core::Simulation sim(ctx, comm, config);
    sim.initialize();
    double cumulative = 0.0;
    for (int s = 0; s < config.num_pm_steps; ++s) {
      const auto report = sim.step(&writer);
      if (config.analysis_every > 0 && (s + 1) % config.analysis_every == 0) {
        sim.run_analysis();
      }
      cumulative += report.seconds;
      writer.drain();
      // Per-step I/O bandwidths from the writer's records.
      const auto records = writer.records();
      const auto& last = records.back();
      const auto bytes = static_cast<std::int64_t>(last.bytes);
      const auto total_bytes =
          comm.allreduce_scalar(bytes, comm::ReduceOp::kSum);
      const double local_s =
          comm.allreduce_scalar(last.local_seconds, comm::ReduceOp::kMax);
      const double pfs_s =
          comm.allreduce_scalar(last.pfs_seconds, comm::ReduceOp::kMax);
      const double cum_seconds =
          comm.allreduce_scalar(cumulative, comm::ReduceOp::kMax);
      double written = 0.0;
      for (const auto& record : records) written += record.bytes;
      const double total_written =
          comm.allreduce_scalar(written, comm::ReduceOp::kSum);
      if (comm.rank() == 0) {
        std::lock_guard<std::mutex> lock(mutex);
        trace.push_back(StepTrace{
            report.step, 1.0 / report.a1 - 1.0, cum_seconds,
            static_cast<double>(total_bytes) / 1e6 / std::max(1e-9, local_s),
            static_cast<double>(total_bytes) / 1e6 / std::max(1e-9, pfs_s),
            total_written / 1e9});
      }
    }
    // Merge timers (max-rank semantics approximated by rank 0 + merge).
    {
      std::lock_guard<std::mutex> lock(mutex);
      timers.merge(sim.timers());
      hydro_seconds =
          std::max(hydro_seconds, sim.timers().grand_total());
    }
  });

  std::printf("%-6s %-8s %-14s %-14s %-14s %-12s\n", "step", "z",
              "cum. TTS [s]", "NVMe [MB/s]", "PFS [MB/s]", "written [GB]");
  bench::print_rule();
  for (const auto& t : trace) {
    std::printf("%-6llu %-8.2f %-14.2f %-14.1f %-14.1f %-12.4f\n",
                static_cast<unsigned long long>(t.step), t.z,
                t.cumulative_seconds, t.nvme_bw_mb_s, t.pfs_bw_mb_s,
                t.cumulative_gb);
  }
  bench::print_rule();

  std::printf("\ncomponent breakdown vs paper (Fig. 2 / Fig. 5):\n");
  struct PaperFraction {
    const char* name;
    double paper;
  };
  const PaperFraction reference[] = {
      {timers::kShortRange, 0.796}, {timers::kAnalysis, 0.116},
      {timers::kIO, 0.026},         {timers::kLongRange, 0.017},
      {timers::kTreeBuild, 0.017},  {timers::kMisc, 0.028},
  };
  std::printf("%-14s %-12s %-12s\n", "component", "measured", "paper");
  for (const auto& ref : reference) {
    std::printf("%-14s %-12.1f%% %-12.1f%%\n", ref.name,
                100.0 * timers.fraction(ref.name), 100.0 * ref.paper);
  }

  // Gravity-only comparison (paper: hydro run ~16x a gravity-only run).
  {
    auto go_config = config;
    go_config.hydro = false;
    go_config.subgrid_on = false;
    go_config.analysis_every = 0;
    comm::World world2(ranks);
    world2.run([&](comm::Communicator& comm) {
      core::SimContext ctx(go_config.threads);
      core::Simulation sim(ctx, comm, go_config);
      sim.initialize();
      const auto result = sim.run();
      (void)result;
      const double total = comm.allreduce_scalar(
          sim.timers().grand_total(), comm::ReduceOp::kMax);
      if (comm.rank() == 0) {
        std::lock_guard<std::mutex> lock(mutex);
        gravity_only_seconds = total;
      }
    });
  }
  std::printf("\nhydro vs gravity-only cost: %.2f s vs %.2f s -> %.1fx "
              "(paper: ~16x; 196 h vs 12 h)\n",
              hydro_seconds, gravity_only_seconds,
              hydro_seconds / std::max(1e-9, gravity_only_seconds));

  const double total_gb = trace.empty() ? 0.0 : trace.back().cumulative_gb;
  std::printf("\ntotal checkpoint data: %.3f GB over %zu steps "
              "(checkpoint-every-step policy, window pruned; see io_tiers "
              "for the direct-vs-multi-tier bandwidth comparison)\n",
              total_gb, trace.size());
  std::filesystem::remove_all(workdir);
  return 0;
}
