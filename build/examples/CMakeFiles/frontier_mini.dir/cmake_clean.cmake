file(REMOVE_RECURSE
  "CMakeFiles/frontier_mini.dir/frontier_mini.cpp.o"
  "CMakeFiles/frontier_mini.dir/frontier_mini.cpp.o.d"
  "frontier_mini"
  "frontier_mini.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frontier_mini.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
