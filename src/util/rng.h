// Deterministic, splittable random number generation.
//
// All stochastic pieces of the simulation (initial condition phases,
// stochastic star formation, feedback event sampling, fault injection)
// draw from seeded counter-based streams so that reruns — and ranks —
// are bit-reproducible regardless of execution order.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>

namespace crkhacc {

/// SplitMix64: tiny, high-quality 64-bit mixer. Used both as a stream
/// seeder and as a standalone generator.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [0, 1).
  float next_float() {
    return static_cast<float>(next_u64() >> 40) * 0x1.0p-24f;
  }

  /// Standard normal via Box-Muller (uses two uniforms per pair).
  double next_gaussian() {
    if (have_cached_) {
      have_cached_ = false;
      return cached_;
    }
    double u1 = next_double();
    double u2 = next_double();
    // Guard against log(0).
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * std::numbers::pi * u2;
    cached_ = radius * std::sin(angle);
    have_cached_ = true;
    return radius * std::cos(angle);
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire).
  std::uint64_t next_bounded(std::uint64_t bound) {
    if (bound == 0) return 0;
    // 128-bit multiply rejection method.
    while (true) {
      const std::uint64_t x = next_u64();
      const __uint128_t m = static_cast<__uint128_t>(x) * bound;
      const std::uint64_t low = static_cast<std::uint64_t>(m);
      if (low >= bound || low >= (-bound) % bound) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

 private:
  std::uint64_t state_;
  bool have_cached_ = false;
  double cached_ = 0.0;
};

/// Counter-based stream: hash(seed, stream, counter) per draw. Draw order
/// independence makes per-particle stochastic physics reproducible under
/// any particle permutation — required because our rank decomposition
/// reshuffles particles every step.
class CounterRng {
 public:
  CounterRng(std::uint64_t seed, std::uint64_t stream)
      : seed_(seed), stream_(stream) {}

  /// Uniform double in [0, 1) for logical counter `counter`.
  double uniform(std::uint64_t counter) const {
    return static_cast<double>(mix(counter) >> 11) * 0x1.0p-53;
  }

  std::uint64_t u64(std::uint64_t counter) const { return mix(counter); }

 private:
  std::uint64_t mix(std::uint64_t counter) const {
    // Two rounds of splitmix over (seed, stream, counter).
    std::uint64_t z = seed_ ^ (0x9e3779b97f4a7c15ULL * (stream_ + 1));
    z += 0x9e3779b97f4a7c15ULL * (counter + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    z = (z ^ (z >> 33)) * 0xff51afd7ed558ccdULL;
    z = (z ^ (z >> 33)) * 0xc4ceb9fe1a85ec53ULL;
    return z ^ (z >> 33);
  }

  std::uint64_t seed_;
  std::uint64_t stream_;
};

}  // namespace crkhacc
