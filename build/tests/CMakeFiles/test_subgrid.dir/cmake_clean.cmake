file(REMOVE_RECURSE
  "CMakeFiles/test_subgrid.dir/test_subgrid.cpp.o"
  "CMakeFiles/test_subgrid.dir/test_subgrid.cpp.o.d"
  "test_subgrid"
  "test_subgrid.pdb"
  "test_subgrid[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_subgrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
