// Shared immutable scenario context.
//
// A campaign is a fleet of simulations, not one run: parameter sweeps,
// ensemble ICs, mock-survey production. Today every Simulation privately
// owns its thread pool, cooling tables, and IC machinery, so N scenarios
// cost N x the setup and fight each other for cores. SimContext is the
// redesigned construction root: it owns the process-wide worker pool and
// caches of the expensive *immutable* assets —
//
//   * the util::ThreadPool every borrowing Simulation schedules on,
//   * CoolingTable instances keyed bit-exactly on their CoolingConfig,
//   * primed initial states (the particle state right after
//     Simulation::initialize(): IC generation + exchange + solver
//     priming) keyed on every config field that feeds that path,
//   * FFT plans (process-wide in fft/fft.cpp, keyed by transform
//     length; surfaced here through asset_stats()).
//
// Assets are built once, immutable after build, and handed out as
// shared_ptr<const T> value-semantics handles — sharing is safe because
// nothing ever mutates a cached asset. The pool's thread count is
// deliberately NOT part of any cache key: results are bitwise identical
// for every thread count (util/thread_pool.h), so a state primed at one
// width is valid at any other.
//
// Concurrency contract: one SimContext serves one rank thread. Share it
// across the Simulations of that rank (sequentially or slice-interleaved
// by core::ScenarioService), never across ranks stepping concurrently —
// ThreadPool regions must not be entered from two external threads at
// once. The asset caches themselves are mutex-guarded, so concurrent
// lookups are safe.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/config.h"
#include "core/particles.h"
#include "subgrid/cooling.h"
#include "util/thread_pool.h"

namespace crkhacc::core {

/// The particle state Simulation::initialize() ends with: ICs generated,
/// exchanged/overloaded, solver state primed. Immutable once stored.
struct CachedInitialState {
  Particles particles;
  double scale_factor = 0.0;
};

class SimContext {
 public:
  /// Thread-count mapping matches SimConfig::threads: 0 selects hardware
  /// concurrency, negative values fall back to 1.
  explicit SimContext(int threads = 1);

  SimContext(const SimContext&) = delete;
  SimContext& operator=(const SimContext&) = delete;

  util::ThreadPool& thread_pool() { return pool_; }
  const util::ThreadPool& thread_pool() const { return pool_; }

  /// The cooling/EOS table for `config`, built on first request and
  /// shared (bit-exact config key) afterwards.
  std::shared_ptr<const subgrid::CoolingTable> cooling_table(
      const subgrid::CoolingConfig& config);

  /// Cached initial state lookup; null on miss. Keys come from
  /// initial_state_key().
  std::shared_ptr<const CachedInitialState> find_initial_state(
      const std::string& key);

  /// Publish a freshly primed initial state (first writer wins; a
  /// concurrent duplicate is dropped).
  void store_initial_state(const std::string& key, CachedInitialState state);

  /// Bit-exact serialization of every config field that feeds
  /// initialize(): IC generation (np/box/z_init/seed/species/T_init and
  /// the full cosmology), the domain (rank, size), the force-split and
  /// SPH parameters that shape priming, and the kernel launch policy.
  /// `threads` is deliberately excluded — results are thread-count
  /// invariant by the pool's determinism contract.
  static std::string initial_state_key(const SimConfig& config, int rank,
                                       int size);

  /// Cache accounting, including the process-wide FFT plan cache.
  struct AssetStats {
    std::uint64_t cooling_hits = 0;
    std::uint64_t cooling_misses = 0;
    std::uint64_t initial_state_hits = 0;
    std::uint64_t initial_state_misses = 0;
    std::uint64_t fft_plan_hits = 0;    ///< process-wide (fft/fft.h)
    std::uint64_t fft_plan_misses = 0;  ///< process-wide (fft/fft.h)
  };
  AssetStats asset_stats() const;

 private:
  util::ThreadPool pool_;

  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<const subgrid::CoolingTable>>
      cooling_tables_;
  std::map<std::string, std::shared_ptr<const CachedInitialState>>
      initial_states_;
  std::uint64_t cooling_hits_ = 0;
  std::uint64_t cooling_misses_ = 0;
  std::uint64_t initial_state_hits_ = 0;
  std::uint64_t initial_state_misses_ = 0;
};

}  // namespace crkhacc::core
