// Short-range gravity: the direct particle-pair complement of the
// filtered PM solve.
//
// Within the chaining-mesh cutoff, each pair contributes the Newtonian
// force times the split factor f_s(r) (mesh/force_split.h), so that
// PM + short-range sums to the full 1/r^2 force. A Plummer softening
// regularizes close encounters at the force-resolution scale. Runs as a
// warp-split leaf-pair kernel like every other short-range operator.
#pragma once

#include <cmath>
#include <cstdint>

#include "core/particles.h"
#include "gpu/device.h"
#include "gpu/warp.h"
#include "mesh/force_split.h"
#include "tree/chaining_mesh.h"

namespace crkhacc::gravity {

class ShortRangeKernel {
 public:
  static constexpr const char* kName = "gravity_short_range";
  static constexpr double kFlopsPerInteraction = 42.0;
  static constexpr double kFlopsPerPartial = 1.0;

  struct State {
    float x, y, z;
    float mass;
  };
  struct Partial {
    float m;  ///< g_j term: the partner's mass is all that is shuffled
  };
  struct Accum {
    float ax = 0.0f, ay = 0.0f, az = 0.0f;
  };

  /// `split` may be null for pure Newtonian pair forces (tests and
  /// non-cosmological problems); `accel_scale` should carry G and any
  /// cosmological factor (G / a^2 for comoving integrations);
  /// `softening` is the Plummer length; `cutoff` the interaction radius
  /// (<= chaining-mesh bin width).
  ShortRangeKernel(Particles& particles, const std::uint8_t* active,
                   const mesh::ForceSplit* split, float accel_scale,
                   float softening, float cutoff)
      : p_(particles),
        active_(active),
        split_(split),
        scale_(accel_scale),
        soft2_(softening * softening),
        cutoff2_(cutoff * cutoff) {}

  State load(std::uint32_t i) const {
    return State{p_.x[i], p_.y[i], p_.z[i], p_.mass[i]};
  }

  Partial partial(const State& s) const { return Partial{s.mass}; }

  void interact(const State& self, const Partial& /*self_p*/,
                const State& other, const Partial& other_p, Accum& acc) const {
    const float dx = self.x - other.x;
    const float dy = self.y - other.y;
    const float dz = self.z - other.z;
    const float r2 = dx * dx + dy * dy + dz * dz;
    if (r2 >= cutoff2_ || r2 <= 0.0f) return;
    const float r = std::sqrt(r2);
    const float soft_r2 = r2 + soft2_;
    const float inv_r3 = 1.0f / (soft_r2 * std::sqrt(soft_r2));
    const float fs =
        split_ ? static_cast<float>(split_->short_range_factor(r)) : 1.0f;
    // a_i = -m_j f_s(r) d_ij / r^3 (G and 1/a^2 applied at store).
    const float f = -other_p.m * fs * inv_r3;
    acc.ax += f * dx;
    acc.ay += f * dy;
    acc.az += f * dz;
  }

  void store(std::uint32_t i, const Accum& acc) {
    if (active_ && !active_[i]) return;
    p_.ax[i] += scale_ * acc.ax;
    p_.ay[i] += scale_ * acc.ay;
    p_.az[i] += scale_ * acc.az;
  }

 private:
  Particles& p_;
  const std::uint8_t* active_;
  const mesh::ForceSplit* split_;
  float scale_;
  float soft2_;
  float cutoff2_;
};

struct GravityConfig {
  float softening = 0.05f;  ///< Plummer softening (code length)
  /// Pair-kernel launch policy (warp size, mode, pool schedule).
  gpu::LaunchConfig launch;
};

/// Evaluate the short-range gravity of all particles in `mesh` (built
/// over every species). Accumulates into ax/ay/az; `a` is the scale
/// factor (1 = non-cosmological => pure Newtonian requires split=null).
/// If `pairs` is non-null, uses the caller's (active-filtered) leaf pair
/// list instead of building one. With a pool, the launch follows
/// config.launch.schedule — owner-leaf accumulation by default — and is
/// bitwise identical to serial for any thread count.
gpu::LaunchStats compute_short_range(
    Particles& particles, const tree::ChainingMesh& mesh,
    const mesh::ForceSplit* split, const GravityConfig& config, double a,
    const std::uint8_t* active, gpu::FlopRegistry& flops,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>* pairs =
        nullptr,
    util::ThreadPool* pool = nullptr);

/// Reference O(N^2) Newtonian (or split) direct sum, for accuracy tests.
void direct_sum_reference(Particles& particles, const mesh::ForceSplit* split,
                          float softening, double accel_scale);

}  // namespace crkhacc::gravity
