#include "comm/world.h"

#include <algorithm>
#include <thread>

namespace crkhacc::comm {
namespace {

// Internal tags (negative so they never collide with user tags, which are
// required to be non-negative). Collectives are built on point-to-point;
// correctness of back-to-back collectives follows from per-(source, tag)
// FIFO message ordering.
constexpr int kTagAllgather = -1;
constexpr int kTagBcast = -2;
constexpr int kTagAlltoall = -3;

}  // namespace

// --------------------------------------------------------------------------
// World

World::World(int num_ranks) : num_ranks_(num_ranks) {
  CHECK(num_ranks >= 1);
  mailboxes_.reserve(static_cast<std::size_t>(num_ranks));
  for (int i = 0; i < num_ranks; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

World::~World() = default;

void World::run(const std::function<void(Communicator&)>& rank_main) {
  // Any leftover state from a previous (buggy) run would corrupt this one.
  for (auto& box : mailboxes_) {
    CHECK(box->messages.empty());
  }
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_ranks_));
  for (int r = 0; r < num_ranks_; ++r) {
    threads.emplace_back([this, r, &rank_main] {
      Communicator comm(*this, r);
      rank_main(comm);
    });
  }
  for (auto& t : threads) t.join();
}

void World::deliver(int dest, Message message) {
  CHECK(dest >= 0 && dest < num_ranks_);
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dest)];
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    box.messages.push_back(std::move(message));
  }
  box.cv.notify_all();
}

std::vector<std::uint8_t> World::wait_for(int self, int source, int tag) {
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(self)];
  std::unique_lock<std::mutex> lock(box.mutex);
  while (true) {
    auto it = std::find_if(box.messages.begin(), box.messages.end(),
                           [&](const Message& m) {
                             return m.source == source && m.tag == tag;
                           });
    if (it != box.messages.end()) {
      auto payload = std::move(it->payload);
      box.messages.erase(it);
      return payload;
    }
    box.cv.wait(lock);
  }
}

void World::barrier_wait() {
  std::unique_lock<std::mutex> lock(barrier_mutex_);
  const std::uint64_t generation = barrier_generation_;
  if (++barrier_arrived_ == num_ranks_) {
    barrier_arrived_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
    return;
  }
  barrier_cv_.wait(lock, [&] { return barrier_generation_ != generation; });
}

// --------------------------------------------------------------------------
// Communicator

int Communicator::size() const { return world_.num_ranks_; }

void Communicator::send_bytes(int dest, int tag, const void* data,
                              std::size_t size) {
  CHECK(tag >= 0);
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  bytes_sent_ += size;
  world_.deliver(dest, World::Message{rank_, tag,
                                      std::vector<std::uint8_t>(bytes, bytes + size)});
}

std::vector<std::uint8_t> Communicator::recv_bytes(int source, int tag) {
  CHECK(tag >= 0);
  return world_.wait_for(rank_, source, tag);
}

void Communicator::barrier() { world_.barrier_wait(); }

std::vector<std::vector<std::uint8_t>> Communicator::allgather_bytes(
    const std::vector<std::uint8_t>& mine) {
  const int n = size();
  for (int d = 0; d < n; ++d) {
    bytes_sent_ += mine.size();
    world_.deliver(d, World::Message{rank_, kTagAllgather, mine});
  }
  std::vector<std::vector<std::uint8_t>> out(static_cast<std::size_t>(n));
  for (int s = 0; s < n; ++s) {
    out[static_cast<std::size_t>(s)] = world_.wait_for(rank_, s, kTagAllgather);
  }
  return out;
}

void Communicator::allreduce(std::span<double> values, ReduceOp op) {
  std::vector<std::uint8_t> mine(values.size_bytes());
  std::memcpy(mine.data(), values.data(), mine.size());
  auto all = allgather_bytes(mine);
  for (std::size_t s = 0; s < all.size(); ++s) {
    if (static_cast<int>(s) == rank_) continue;
    CHECK(all[s].size() == values.size_bytes());
    const auto* other = reinterpret_cast<const double*>(all[s].data());
    for (std::size_t i = 0; i < values.size(); ++i) {
      switch (op) {
        case ReduceOp::kSum: values[i] += other[i]; break;
        case ReduceOp::kMin: values[i] = std::min(values[i], other[i]); break;
        case ReduceOp::kMax: values[i] = std::max(values[i], other[i]); break;
      }
    }
  }
}

void Communicator::allreduce(std::span<std::int64_t> values, ReduceOp op) {
  std::vector<std::uint8_t> mine(values.size_bytes());
  std::memcpy(mine.data(), values.data(), mine.size());
  auto all = allgather_bytes(mine);
  for (std::size_t s = 0; s < all.size(); ++s) {
    if (static_cast<int>(s) == rank_) continue;
    CHECK(all[s].size() == values.size_bytes());
    const auto* other = reinterpret_cast<const std::int64_t*>(all[s].data());
    for (std::size_t i = 0; i < values.size(); ++i) {
      switch (op) {
        case ReduceOp::kSum: values[i] += other[i]; break;
        case ReduceOp::kMin: values[i] = std::min(values[i], other[i]); break;
        case ReduceOp::kMax: values[i] = std::max(values[i], other[i]); break;
      }
    }
  }
}

double Communicator::allreduce_scalar(double value, ReduceOp op) {
  allreduce(std::span<double>(&value, 1), op);
  return value;
}

std::int64_t Communicator::allreduce_scalar(std::int64_t value, ReduceOp op) {
  allreduce(std::span<std::int64_t>(&value, 1), op);
  return value;
}

void Communicator::bcast_bytes(std::vector<std::uint8_t>& bytes, int root) {
  if (rank_ == root) {
    for (int d = 0; d < size(); ++d) {
      if (d == root) continue;
      bytes_sent_ += bytes.size();
      world_.deliver(d, World::Message{rank_, kTagBcast, bytes});
    }
  } else {
    bytes = world_.wait_for(rank_, root, kTagBcast);
  }
}

std::vector<std::vector<std::uint8_t>> Communicator::alltoallv_bytes(
    const std::vector<std::vector<std::uint8_t>>& sends) {
  const int n = size();
  CHECK(static_cast<int>(sends.size()) == n);
  for (int d = 0; d < n; ++d) {
    bytes_sent_ += sends[static_cast<std::size_t>(d)].size();
    world_.deliver(d, World::Message{rank_, kTagAlltoall,
                                     sends[static_cast<std::size_t>(d)]});
  }
  std::vector<std::vector<std::uint8_t>> out(static_cast<std::size_t>(n));
  for (int s = 0; s < n; ++s) {
    out[static_cast<std::size_t>(s)] = world_.wait_for(rank_, s, kTagAlltoall);
  }
  return out;
}

}  // namespace crkhacc::comm
