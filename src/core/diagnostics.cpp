#include "core/diagnostics.h"

#include <cmath>
#include <span>

namespace crkhacc::core {

ConservationSnapshot measure_conservation(comm::Communicator& comm,
                                          const Particles& particles) {
  // Pack all local sums into one buffer for a single allreduce.
  enum {
    kMassTotal, kMassGas, kMassStars, kMassBh, kMassDm,
    kPx, kPy, kPz,
    kKinetic, kThermal, kMetal,
    kAbsMomentum, kCount,
    kFields,
  };
  double sums[kFields] = {};
  for (std::size_t i = 0; i < particles.size(); ++i) {
    if (!particles.is_owned(i)) continue;
    const double m = particles.mass[i];
    sums[kMassTotal] += m;
    switch (static_cast<Species>(particles.species[i])) {
      case Species::kGas:
        sums[kMassGas] += m;
        sums[kThermal] += m * particles.u[i];
        sums[kMetal] += m * particles.metal[i];
        break;
      case Species::kStar: sums[kMassStars] += m; break;
      case Species::kBlackHole: sums[kMassBh] += m; break;
      case Species::kDarkMatter: sums[kMassDm] += m; break;
    }
    const double vx = particles.vx[i];
    const double vy = particles.vy[i];
    const double vz = particles.vz[i];
    sums[kPx] += m * vx;
    sums[kPy] += m * vy;
    sums[kPz] += m * vz;
    const double v2 = vx * vx + vy * vy + vz * vz;
    sums[kKinetic] += 0.5 * m * v2;
    sums[kAbsMomentum] += m * std::sqrt(v2);
    sums[kCount] += 1.0;
  }
  comm.allreduce(std::span<double>(sums, kFields), comm::ReduceOp::kSum);

  ConservationSnapshot snapshot;
  snapshot.mass_total = sums[kMassTotal];
  snapshot.mass_gas = sums[kMassGas];
  snapshot.mass_stars = sums[kMassStars];
  snapshot.mass_bh = sums[kMassBh];
  snapshot.mass_dm = sums[kMassDm];
  snapshot.momentum = {sums[kPx], sums[kPy], sums[kPz]};
  snapshot.kinetic_energy = sums[kKinetic];
  snapshot.thermal_energy = sums[kThermal];
  snapshot.metal_mass = sums[kMetal];
  snapshot.abs_momentum = sums[kAbsMomentum];
  snapshot.count = static_cast<std::int64_t>(sums[kCount]);
  const double p_mag = std::sqrt(sums[kPx] * sums[kPx] +
                                 sums[kPy] * sums[kPy] +
                                 sums[kPz] * sums[kPz]);
  snapshot.momentum_asymmetry =
      sums[kAbsMomentum] > 0.0 ? p_mag / sums[kAbsMomentum] : 0.0;
  return snapshot;
}

}  // namespace crkhacc::core
