file(REMOVE_RECURSE
  "CMakeFiles/io_tiers.dir/io_tiers.cpp.o"
  "CMakeFiles/io_tiers.dir/io_tiers.cpp.o.d"
  "io_tiers"
  "io_tiers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_tiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
