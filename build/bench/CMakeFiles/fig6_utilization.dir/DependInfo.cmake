
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig6_utilization.cpp" "bench/CMakeFiles/fig6_utilization.dir/fig6_utilization.cpp.o" "gcc" "bench/CMakeFiles/fig6_utilization.dir/fig6_utilization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/crkhacc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sph/CMakeFiles/crkhacc_sph.dir/DependInfo.cmake"
  "/root/repo/build/src/gravity/CMakeFiles/crkhacc_gravity.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/crkhacc_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/subgrid/CMakeFiles/crkhacc_subgrid.dir/DependInfo.cmake"
  "/root/repo/build/src/integrator/CMakeFiles/crkhacc_integrator.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/crkhacc_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/crkhacc_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/cosmology/CMakeFiles/crkhacc_cosmology.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/crkhacc_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/tree/CMakeFiles/crkhacc_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/crkhacc_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/crkhacc_io.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/crkhacc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
