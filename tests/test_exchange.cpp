// Tests for particle migration and the overload (ghost) exchange.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <mutex>
#include <set>
#include <tuple>

#include "comm/decomposition.h"
#include "comm/world.h"
#include "core/diagnostics.h"
#include "core/exchange.h"
#include "core/param_file.h"
#include "core/simulation.h"
#include "util/rng.h"

namespace crkhacc::core {
namespace {

Particles scatter_particles(const comm::CartDecomposition& decomp, int rank,
                            std::size_t total, double box, std::uint64_t seed) {
  // Deterministic global cloud; each rank takes the ones it owns.
  SplitMix64 rng(seed);
  Particles p;
  for (std::size_t i = 0; i < total; ++i) {
    const std::array<double, 3> pos{rng.next_double() * box,
                                    rng.next_double() * box,
                                    rng.next_double() * box};
    if (decomp.owner_of(pos) != rank) continue;
    p.push_back(i, Species::kDarkMatter, static_cast<float>(pos[0]),
                static_cast<float>(pos[1]), static_cast<float>(pos[2]), 0, 0,
                0, 1.0f);
  }
  return p;
}

class ExchangeTest : public ::testing::TestWithParam<int> {};

TEST_P(ExchangeTest, ConservesGlobalOwnedCount) {
  const int ranks = GetParam();
  const double box = 16.0;
  comm::World world(ranks);
  world.run([&](comm::Communicator& comm) {
    const comm::CartDecomposition decomp(comm.size(), box);
    auto p = scatter_particles(decomp, comm.rank(), 500, box, 1);
    // Displace some particles across boundaries (wrapped).
    for (std::size_t i = 0; i < p.size(); i += 3) {
      p.x[i] = static_cast<float>(decomp.wrap(p.x[i] + 3.0));
    }
    const auto stats = exchange_and_overload(comm, decomp, p, 1.5);
    const auto total =
        comm.allreduce_scalar(stats.owned, comm::ReduceOp::kSum);
    EXPECT_EQ(total, 500);
    // Every owned particle is in this rank's box afterwards.
    const auto box_local = decomp.local_box(comm.rank());
    for (std::size_t i = 0; i < p.size(); ++i) {
      if (!p.is_owned(i)) continue;
      EXPECT_TRUE(box_local.contains({p.x[i], p.y[i], p.z[i]}));
    }
  });
}

TEST_P(ExchangeTest, GhostsLieInOverloadedShell) {
  const int ranks = GetParam();
  const double box = 16.0;
  const double overload = 2.0;
  comm::World world(ranks);
  world.run([&](comm::Communicator& comm) {
    const comm::CartDecomposition decomp(comm.size(), box);
    auto p = scatter_particles(decomp, comm.rank(), 800, box, 2);
    exchange_and_overload(comm, decomp, p, overload);
    const auto obox = decomp.overloaded_box(comm.rank(), overload);
    const auto inner = decomp.local_box(comm.rank());
    std::size_t ghosts = 0;
    for (std::size_t i = 0; i < p.size(); ++i) {
      if (p.is_owned(i)) continue;
      ++ghosts;
      // Inside the overloaded box, outside the owned box.
      EXPECT_TRUE(obox.contains({p.x[i], p.y[i], p.z[i]}))
          << p.x[i] << "," << p.y[i] << "," << p.z[i];
      EXPECT_FALSE(inner.contains({p.x[i], p.y[i], p.z[i]}));
    }
    EXPECT_GT(ghosts, 0u);
  });
}

TEST_P(ExchangeTest, GhostCoverageIsComplete) {
  // Every particle of every other rank whose periodic image falls in my
  // overloaded shell must arrive as a ghost.
  const int ranks = GetParam();
  const double box = 16.0;
  const double overload = 2.0;
  comm::World world(ranks);
  std::mutex mutex;
  std::vector<std::array<float, 3>> global_cloud;
  // Build the global cloud once (all ranks generate identically).
  {
    SplitMix64 rng(3);
    for (int i = 0; i < 600; ++i) {
      global_cloud.push_back(
          {static_cast<float>(rng.next_double() * box),
           static_cast<float>(rng.next_double() * box),
           static_cast<float>(rng.next_double() * box)});
    }
  }
  world.run([&](comm::Communicator& comm) {
    const comm::CartDecomposition decomp(comm.size(), box);
    Particles p;
    for (std::size_t i = 0; i < global_cloud.size(); ++i) {
      const auto& c = global_cloud[i];
      const std::array<double, 3> pos{c[0], c[1], c[2]};
      if (decomp.owner_of(pos) != comm.rank()) continue;
      p.push_back(i, Species::kDarkMatter, c[0], c[1], c[2], 0, 0, 0, 1.0f);
    }
    exchange_and_overload(comm, decomp, p, overload);

    // Expected ghosts: image positions of non-owned global particles
    // inside my overloaded box.
    const auto obox = decomp.overloaded_box(comm.rank(), overload);
    const auto inner = decomp.local_box(comm.rank());
    std::set<std::uint64_t> ghost_ids;
    for (std::size_t i = 0; i < p.size(); ++i) {
      if (!p.is_owned(i)) ghost_ids.insert(p.id[i]);
    }
    for (std::size_t i = 0; i < global_cloud.size(); ++i) {
      const auto& c = global_cloud[i];
      bool expected = false;
      for (int ox = -1; ox <= 1 && !expected; ++ox) {
        for (int oy = -1; oy <= 1 && !expected; ++oy) {
          for (int oz = -1; oz <= 1 && !expected; ++oz) {
            const std::array<double, 3> img{c[0] + ox * box, c[1] + oy * box,
                                            c[2] + oz * box};
            if (!obox.contains(img)) continue;
            if (ox == 0 && oy == 0 && oz == 0 && inner.contains(img)) continue;
            expected = true;
          }
        }
      }
      if (expected) {
        EXPECT_TRUE(ghost_ids.count(i)) << "missing ghost id " << i;
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, ExchangeTest, ::testing::Values(1, 2, 4, 8));

TEST(Exchange, SingleRankGetsPeriodicSelfImages) {
  comm::World world(1);
  world.run([](comm::Communicator& comm) {
    const comm::CartDecomposition decomp(1, 10.0);
    Particles p;
    // Particle near the low-x face.
    p.push_back(0, Species::kDarkMatter, 0.2f, 5.0f, 5.0f, 0, 0, 0, 1.0f);
    // Particle in the middle: no images needed.
    p.push_back(1, Species::kDarkMatter, 5.0f, 5.0f, 5.0f, 0, 0, 0, 1.0f);
    const auto stats = exchange_and_overload(comm, decomp, p, 1.0);
    EXPECT_EQ(stats.owned, 2);
    EXPECT_EQ(stats.ghosts, 1);
    // The ghost is the unwrapped image at x ~ 10.2.
    bool found = false;
    for (std::size_t i = 0; i < p.size(); ++i) {
      if (p.is_owned(i)) continue;
      EXPECT_EQ(p.id[i], 0u);
      EXPECT_NEAR(p.x[i], 10.2f, 1e-4);
      found = true;
    }
    EXPECT_TRUE(found);
  });
}

TEST(Exchange, StaleGhostsDroppedOnReexchange) {
  comm::World world(2);
  world.run([](comm::Communicator& comm) {
    const comm::CartDecomposition decomp(2, 10.0);
    auto p = scatter_particles(decomp, comm.rank(), 200, 10.0, 4);
    exchange_and_overload(comm, decomp, p, 1.0);
    const auto owned_before = [&] {
      std::size_t n = 0;
      for (std::size_t i = 0; i < p.size(); ++i) n += p.is_owned(i);
      return n;
    }();
    // Re-exchange without moving anything: ghosts rebuilt, not duplicated.
    const auto stats = exchange_and_overload(comm, decomp, p, 1.0);
    EXPECT_EQ(static_cast<std::size_t>(stats.owned), owned_before);
    std::map<std::uint64_t, int> ghost_copies;
    for (std::size_t i = 0; i < p.size(); ++i) {
      if (!p.is_owned(i)) ++ghost_copies[p.id[i]];
    }
    // With 2 ranks (1x1x2 split), a boundary particle can legitimately
    // appear as several periodic images, but never twice at the same
    // image position.
    std::set<std::tuple<std::uint64_t, float, float, float>> seen;
    for (std::size_t i = 0; i < p.size(); ++i) {
      if (p.is_owned(i)) continue;
      const auto key = std::make_tuple(p.id[i], p.x[i], p.y[i], p.z[i]);
      EXPECT_FALSE(seen.count(key)) << "duplicate ghost image";
      seen.insert(key);
    }
  });
}

TEST(ParamFile, ParsesTypedValuesAndComments) {
  const auto params = ParamFile::parse(R"(
# campaign configuration
np = 16
box = 32.5        # Mpc/h
hydro = true
sph_kernel = wendland
label = frontier-e-mini
)");
  ASSERT_TRUE(params.has_value());
  EXPECT_EQ(params->get_int("np"), 16);
  EXPECT_DOUBLE_EQ(params->get_double("box").value(), 32.5);
  EXPECT_EQ(params->get_bool("hydro"), true);
  EXPECT_EQ(params->get_string("label"), "frontier-e-mini");
  EXPECT_FALSE(params->has("missing"));
  EXPECT_FALSE(params->get_double("label").has_value());  // wrong type
  EXPECT_FALSE(params->get_int("box").has_value());       // non-integral
}

TEST(ParamFile, RejectsMalformedLines) {
  EXPECT_FALSE(ParamFile::parse("np 16").has_value());
  EXPECT_FALSE(ParamFile::parse("= 3").has_value());
  EXPECT_TRUE(ParamFile::parse("").has_value());
  EXPECT_FALSE(ParamFile::load("/nonexistent/file.params").has_value());
}

TEST(ParamFile, AppliesOntoSimConfigAndFlagsUnknownKeys) {
  const auto params = ParamFile::parse(R"(
np = 20
box = 40.0
z_final = 0.5
hydro = false
sph_kernel = wendland
warp_size = 32
omega_m = 0.3
not_a_real_key = 7
)");
  ASSERT_TRUE(params.has_value());
  SimConfig config;
  const auto unknown = params->apply(config);
  EXPECT_EQ(config.np, 20u);
  EXPECT_DOUBLE_EQ(config.box, 40.0);
  EXPECT_DOUBLE_EQ(config.z_final, 0.5);
  EXPECT_FALSE(config.hydro);
  EXPECT_EQ(config.sph.kernel, sph::KernelShape::kWendlandC4);
  EXPECT_EQ(config.sph.launch.warp_size, 32u);
  EXPECT_EQ(config.gravity.launch.warp_size, 32u);
  EXPECT_DOUBLE_EQ(config.cosmology.omega_m, 0.3);
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "not_a_real_key");
}

TEST(ParamFile, AppliesLaunchKeysAndRejectsDegenerateWarpSize) {
  const auto params = ParamFile::parse(R"(
launch_mode = naive
launch_schedule = deferred_store
)");
  ASSERT_TRUE(params.has_value());
  SimConfig config;
  EXPECT_TRUE(params->apply(config).empty());
  EXPECT_EQ(config.sph.launch.mode, gpu::LaunchMode::kNaive);
  EXPECT_EQ(config.gravity.launch.mode, gpu::LaunchMode::kNaive);
  EXPECT_EQ(config.sph.launch.schedule, gpu::LaunchSchedule::kDeferredStore);
  EXPECT_EQ(config.gravity.launch.schedule,
            gpu::LaunchSchedule::kDeferredStore);

  // warp_size = 1 would make the warp-split half-warp zero lanes wide
  // and hang the tile loop; the parser must refuse it and keep the
  // previous value.
  const auto bad = ParamFile::parse("warp_size = 1\nlaunch_schedule = bogus\n");
  ASSERT_TRUE(bad.has_value());
  SimConfig keep;
  keep.sph.launch.warp_size = 32;
  keep.gravity.launch.warp_size = 32;
  const auto flagged = bad->apply(keep);
  ASSERT_EQ(flagged.size(), 2u);
  EXPECT_EQ(keep.sph.launch.warp_size, 32u);
  EXPECT_EQ(keep.gravity.launch.warp_size, 32u);
  EXPECT_EQ(keep.sph.launch.schedule, gpu::LaunchSchedule::kLeafOwner);
}

TEST(ParamFile, AppliesRankLossPolicyAndRejectsUnknownValues) {
  const auto params = ParamFile::parse("rank_loss_policy = shrink\n");
  ASSERT_TRUE(params.has_value());
  SimConfig config;
  EXPECT_TRUE(params->apply(config).empty());
  EXPECT_EQ(config.rank_loss_policy, RankLossPolicy::kShrink);

  const auto back = ParamFile::parse("rank_loss_policy = fatal\n");
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->apply(config).empty());
  EXPECT_EQ(config.rank_loss_policy, RankLossPolicy::kFatal);

  // An unknown policy is flagged and the previous value kept — a typo
  // must not silently downgrade a shrink campaign to fatal.
  const auto bad = ParamFile::parse("rank_loss_policy = respawn\n");
  ASSERT_TRUE(bad.has_value());
  SimConfig keep;
  keep.rank_loss_policy = RankLossPolicy::kShrink;
  EXPECT_EQ(bad->apply(keep).size(), 1u);
  EXPECT_EQ(keep.rank_loss_policy, RankLossPolicy::kShrink);
}

TEST(Diagnostics, ConservationSnapshotReducesGlobally) {
  comm::World world(2);
  world.run([](comm::Communicator& comm) {
    Particles p;
    if (comm.rank() == 0) {
      const auto g = p.push_back(0, Species::kGas, 1, 1, 1, 10, 0, 0, 2.0f);
      p.u[g] = 50.0f;
      p.metal[g] = 0.1f;
      p.push_back(1, Species::kDarkMatter, 2, 2, 2, -10, 0, 0, 3.0f);
    } else {
      p.push_back(2, Species::kStar, 3, 3, 3, 0, 5, 0, 1.0f);
      p.push_back(3, Species::kBlackHole, 4, 4, 4, 0, 0, 0, 0.5f);
      // A ghost that must not be double counted.
      const auto ghost = p.push_back(4, Species::kGas, 5, 5, 5, 0, 0, 0, 9.0f);
      p.ghost[ghost] = 1;
    }
    const auto snap = measure_conservation(comm, p);
    EXPECT_EQ(snap.count, 4);
    EXPECT_DOUBLE_EQ(snap.mass_total, 6.5);
    EXPECT_DOUBLE_EQ(snap.mass_gas, 2.0);
    EXPECT_DOUBLE_EQ(snap.mass_dm, 3.0);
    EXPECT_DOUBLE_EQ(snap.mass_stars, 1.0);
    EXPECT_DOUBLE_EQ(snap.mass_bh, 0.5);
    EXPECT_NEAR(snap.thermal_energy, 100.0, 1e-9);
    EXPECT_NEAR(snap.metal_mass, 0.2, 1e-6);
    // Momentum: 2*10 - 3*10 = -10 in x, 1*5 in y.
    EXPECT_NEAR(snap.momentum[0], -10.0, 1e-9);
    EXPECT_NEAR(snap.momentum[1], 5.0, 1e-9);
    EXPECT_GT(snap.momentum_asymmetry, 0.0);
    EXPECT_LE(snap.momentum_asymmetry, 1.0);
  });
}

TEST(Diagnostics, MassConservedThroughHydroRun) {
  comm::World world(2);
  world.run([](comm::Communicator& comm) {
    core::SimConfig config;
    config.np = 8;
    config.box = 24.0;
    config.ng = 16;
    config.z_init = 20.0;
    config.z_final = 5.0;
    config.num_pm_steps = 2;
    config.hydro = true;
    config.subgrid_on = true;
    config.bins.max_depth = 3;
    SimContext ctx(config.threads);
    Simulation sim(ctx, comm, config);
    sim.initialize();
    const auto before = measure_conservation(comm, sim.particles());
    sim.run();
    const auto after = measure_conservation(comm, sim.particles());
    EXPECT_LT(std::abs(mass_drift(before, after)), 1e-5);
    EXPECT_EQ(before.count, after.count);
    // The isotropic box keeps net momentum a small fraction of the
    // momentum scale.
    EXPECT_LT(after.momentum_asymmetry, 0.1);
  });
}

TEST(Exchange, MigrationMovesOwnershipToCorrectRank) {
  comm::World world(4);
  world.run([](comm::Communicator& comm) {
    const comm::CartDecomposition decomp(4, 8.0);
    Particles p;
    if (comm.rank() == 0) {
      // Deliberately hold particles that belong elsewhere.
      for (int r = 0; r < 4; ++r) {
        const auto center = decomp.local_box(r);
        p.push_back(static_cast<std::uint64_t>(r), Species::kDarkMatter,
                    static_cast<float>(0.5 * (center.lo[0] + center.hi[0])),
                    static_cast<float>(0.5 * (center.lo[1] + center.hi[1])),
                    static_cast<float>(0.5 * (center.lo[2] + center.hi[2])),
                    0, 0, 0, 1.0f);
      }
    }
    exchange_and_overload(comm, decomp, p, 0.5);
    // Each rank owns exactly the particle whose id matches its rank.
    std::size_t owned = 0;
    for (std::size_t i = 0; i < p.size(); ++i) {
      if (!p.is_owned(i)) continue;
      ++owned;
      EXPECT_EQ(p.id[i], static_cast<std::uint64_t>(comm.rank()));
    }
    EXPECT_EQ(owned, 1u);
  });
}

}  // namespace
}  // namespace crkhacc::core
