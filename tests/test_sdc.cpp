// SDC guardrail tests: paged CRC snapshots, audit scan primitives, the
// throwing CHECK family, timestep-anomaly census, bin-occupancy census,
// the auditor's detection lattice, and the end-to-end drill — a seeded
// bit flip in a live particle array is detected, the step rolls back
// and replays, and the final multi-step state is bitwise identical to
// an uninjected run; with the replay budget exhausted the run escalates
// to checkpoint restore (including the PR 1 interaction where the
// newest checkpoint is itself corrupt).
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <vector>

#include "comm/world.h"
#include "core/param_file.h"
#include "core/sdc.h"
#include "core/simulation.h"
#include "integrator/timestep.h"
#include "io/checkpoint.h"
#include "io/multi_tier.h"
#include "io/storage.h"
#include "tree/chaining_mesh.h"
#include "util/assertions.h"
#include "util/audit.h"
#include "util/snapshot.h"

namespace crkhacc {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    // PID-qualified: ctest -j runs each case in its own process, so a
    // per-process counter alone collides across concurrent cases.
    path_ = fs::temp_directory_path() /
            ("crkhacc_sdc_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }

 private:
  static inline int counter_ = 0;
  fs::path path_;
};

// --- util: paged snapshot ---------------------------------------------------

TEST(PagedSnapshot, CaptureRestoreRoundTrip) {
  std::vector<float> a(1000);
  std::vector<std::uint8_t> b(37);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = static_cast<float>(i);
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = static_cast<std::uint8_t>(i);

  util::PagedSnapshot snapshot(/*page_bytes=*/256);
  EXPECT_FALSE(snapshot.valid());
  const std::vector<util::PagedSnapshot::Region> regions = {
      {a.data(), a.size() * sizeof(float)}, {b.data(), b.size()}};
  snapshot.capture(regions);
  ASSERT_TRUE(snapshot.valid());
  EXPECT_TRUE(snapshot.verify());
  EXPECT_EQ(snapshot.bytes(), a.size() * sizeof(float) + b.size());
  EXPECT_EQ(snapshot.pages(), (snapshot.bytes() + 255) / 256);
  EXPECT_EQ(snapshot.num_regions(), 2u);
  EXPECT_EQ(snapshot.region_bytes(1), b.size());

  // Trash the live arrays, then restore.
  std::fill(a.begin(), a.end(), -1.0f);
  std::fill(b.begin(), b.end(), 0xFF);
  const std::vector<util::PagedSnapshot::MutableRegion> out = {
      {a.data(), a.size() * sizeof(float)}, {b.data(), b.size()}};
  ASSERT_TRUE(snapshot.restore(out));
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], static_cast<float>(i));
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    ASSERT_EQ(b[i], static_cast<std::uint8_t>(i));
  }
}

TEST(PagedSnapshot, DoubleBufferKeepsLatestCapture) {
  std::vector<std::uint8_t> data(100, 1);
  util::PagedSnapshot snapshot(64);
  const std::vector<util::PagedSnapshot::Region> region = {
      {data.data(), data.size()}};
  snapshot.capture(region);
  std::fill(data.begin(), data.end(), 2);
  snapshot.capture(region);  // second capture goes to the other buffer
  std::fill(data.begin(), data.end(), 9);
  const std::vector<util::PagedSnapshot::MutableRegion> out = {
      {data.data(), data.size()}};
  ASSERT_TRUE(snapshot.restore(out));
  for (const std::uint8_t v : data) ASSERT_EQ(v, 2);
}

TEST(PagedSnapshot, CorruptedPageIsDetectedAndRestoreRefuses) {
  std::vector<std::uint8_t> data(1000, 7);
  util::PagedSnapshot snapshot(128);
  const std::vector<util::PagedSnapshot::Region> region = {
      {data.data(), data.size()}};
  snapshot.capture(region);
  ASSERT_TRUE(snapshot.verify());

  // Flip one bit of the snapshot payload itself (the corruption the
  // per-page CRCs exist to catch).
  snapshot.mutable_payload_for_test()[513] ^= 0x04;
  EXPECT_FALSE(snapshot.verify());
  std::fill(data.begin(), data.end(), 3);
  const std::vector<util::PagedSnapshot::MutableRegion> out = {
      {data.data(), data.size()}};
  EXPECT_FALSE(snapshot.restore(out));
  // A refused restore must not have written anything.
  for (const std::uint8_t v : data) ASSERT_EQ(v, 3);
}

TEST(PagedSnapshot, EmptyCaptureIsValid) {
  util::PagedSnapshot snapshot;
  std::vector<util::PagedSnapshot::Region> none;
  snapshot.capture(none);
  EXPECT_TRUE(snapshot.valid());
  EXPECT_TRUE(snapshot.verify());
  EXPECT_EQ(snapshot.bytes(), 0u);
  std::vector<util::PagedSnapshot::MutableRegion> out;
  EXPECT_TRUE(snapshot.restore(out));
}

// --- util: audit scans ------------------------------------------------------

TEST(AuditScans, FindNonfiniteAndOutside) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  const std::vector<float> clean = {0.0f, 1.0f, -3.5f};
  EXPECT_EQ(util::find_nonfinite(clean), util::kAuditNone);
  const std::vector<float> dirty = {0.0f, nan, inf};
  EXPECT_EQ(util::find_nonfinite(dirty), 1u);

  EXPECT_EQ(util::find_outside(clean, -4.0f, 4.0f), util::kAuditNone);
  EXPECT_EQ(util::find_outside(clean, 0.0f, 4.0f), 2u);
  // NaN counts as outside any interval.
  EXPECT_EQ(util::find_outside(dirty, -1e30f, 1e30f), 1u);
}

TEST(AuditScans, RelativeDrift) {
  EXPECT_DOUBLE_EQ(util::relative_drift(100.0, 101.0, 1e-30), 0.01);
  EXPECT_DOUBLE_EQ(util::relative_drift(0.0, 0.5, 1.0), 0.5);  // floored
  EXPECT_DOUBLE_EQ(util::relative_drift(50.0, 50.0, 1e-30), 0.0);
}

// --- util: throwing checks --------------------------------------------------

TEST(ThrowingChecks, CheckFiniteThrowsWithContext) {
  EXPECT_NO_THROW(CHECK_FINITE(1.25f, "field x, particle 0"));
  const double nan = std::numeric_limits<double>::quiet_NaN();
  try {
    CHECK_FINITE(nan, "field u, particle 42");
    FAIL() << "expected InvariantError";
  } catch (const InvariantError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("CHECK_FINITE"), std::string::npos);
    EXPECT_NE(what.find("field u, particle 42"), std::string::npos);
    EXPECT_NE(what.find("nan"), std::string::npos);
  }
}

TEST(ThrowingChecks, CheckBoundsThrowsWithValueAndInterval) {
  EXPECT_NO_THROW(CHECK_BOUNDS(0.5, 0.0, 1.0, "ok"));
  try {
    CHECK_BOUNDS(-2.5f, 0.0, 1.0, "field mass, particle 7");
    FAIL() << "expected InvariantError";
  } catch (const InvariantError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("CHECK_BOUNDS"), std::string::npos);
    EXPECT_NE(what.find("-2.5"), std::string::npos);
    EXPECT_NE(what.find("[0, 1]"), std::string::npos);
    EXPECT_NE(what.find("field mass, particle 7"), std::string::npos);
  }
  // NaN fails any bounds check.
  EXPECT_THROW(
      CHECK_BOUNDS(std::numeric_limits<double>::quiet_NaN(), 0.0, 1.0, "nan"),
      InvariantError);
}

// --- integrator: anomaly census ---------------------------------------------

TEST(TimestepAnomalies, AssignBinsCountsCorruptLimits) {
  Particles p;
  for (int i = 0; i < 6; ++i) {
    p.push_back(static_cast<std::uint64_t>(i), Species::kDarkMatter, 0, 0, 0,
                0, 0, 0, 1.0f);
  }
  const double inf = std::numeric_limits<double>::infinity();
  // inf is legal (bin 0); NaN and <=0 are the corruption signatures; the
  // 1e-9 limit demands a deeper bin than max_depth (clamped).
  const std::vector<double> limits = {
      inf, 0.5, std::numeric_limits<double>::quiet_NaN(), -1.0, 0.0, 1e-9};
  integrator::TimeBinConfig bins;
  bins.max_depth = 4;
  integrator::TimestepAnomalyStats stats;
  const int depth = integrator::assign_bins(p, limits, 1.0, bins, &stats);
  EXPECT_EQ(depth, 4);
  EXPECT_EQ(stats.nonfinite, 1u);
  EXPECT_EQ(stats.nonpositive, 2u);
  EXPECT_EQ(stats.clamped, 1u);
  EXPECT_DOUBLE_EQ(stats.min_limit, 1e-9);
  // NaN/non-positive limits land in the deepest bin (defensive).
  EXPECT_EQ(p.bin[2], 4);
  EXPECT_EQ(p.bin[3], 4);
}

// --- tree: occupancy census -------------------------------------------------

TEST(BinOccupancy, CountsOwnedAndFlagsEscapees) {
  comm::Box3 domain;
  domain.lo = {0.0, 0.0, 0.0};
  domain.hi = {8.0, 8.0, 8.0};
  Particles p;
  for (int i = 0; i < 16; ++i) {
    p.push_back(static_cast<std::uint64_t>(i), Species::kDarkMatter,
                0.5f + 0.25f * static_cast<float>(i % 8), 4.0f, 4.0f, 0, 0, 0,
                1.0f);
  }
  p.ghost[0] = 1;                                      // ghosts not counted
  p.x[1] = std::numeric_limits<float>::quiet_NaN();    // escaped
  p.x[2] = 1.0e20f;                                    // escaped
  p.x[3] = -0.4f;                                      // inside slack
  const auto stats = tree::bin_occupancy(domain, 2.0, p, /*slack=*/0.5);
  EXPECT_EQ(stats.bins, 64u);
  EXPECT_EQ(stats.out_of_domain, 2u);
  EXPECT_EQ(stats.counted, 13u);  // 16 - 1 ghost - 2 escaped
  EXPECT_GE(stats.max_bin, 1u);
  EXPECT_NEAR(stats.mean_bin, 13.0 / 64.0, 1e-12);
}

TEST(BinOccupancy, PeriodicWrapIsNotAnEscape) {
  // A particle that drifted across the periodic box edge since the last
  // exchange sits at the far side of the global box while still being
  // legitimately owned by this rank. With the box period supplied, the
  // census must count it, not flag it (a false escape here would make
  // the SDC audit deterministically fail a healthy step — fatal, since
  // replay reproduces it bit-for-bit).
  comm::Box3 domain;
  domain.lo = {0.0, 0.0, 0.0};
  domain.hi = {4.0, 8.0, 8.0};  // rank's slab of an 8^3 box
  Particles p;
  p.push_back(0, Species::kDarkMatter, 2.0f, 4.0f, 4.0f, 0, 0, 0, 1.0f);
  p.push_back(1, Species::kDarkMatter, 7.9f, 4.0f, 4.0f, 0, 0, 0,
              1.0f);  // x = -0.1 wrapped to 7.9
  const auto no_period = tree::bin_occupancy(domain, 2.0, p, /*slack=*/0.5);
  EXPECT_EQ(no_period.out_of_domain, 1u);
  const auto periodic =
      tree::bin_occupancy(domain, 2.0, p, /*slack=*/0.5, /*period=*/8.0);
  EXPECT_EQ(periodic.out_of_domain, 0u);
  EXPECT_EQ(periodic.counted, 2u);
  // A genuine escape is still flagged even with the period supplied.
  p.x[1] = 5.5f;  // neither 5.5 nor 5.5±8 is within [−0.5, 4.5]
  const auto escaped =
      tree::bin_occupancy(domain, 2.0, p, /*slack=*/0.5, /*period=*/8.0);
  EXPECT_EQ(escaped.out_of_domain, 1u);
}

TEST(BinOccupancy, HardenedBinningClampsCorruptPositions) {
  comm::Box3 domain;
  domain.lo = {0.0, 0.0, 0.0};
  domain.hi = {8.0, 8.0, 8.0};
  tree::ChainingMesh mesh(domain, {2.0, 4});
  // NaN and wildly out-of-range coordinates must land in valid edge bins
  // (no float->int UB; this test is the UBSan guard for the SDC window
  // between a flip and its audit).
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_EQ(mesh.bin_of_position_for_test(nan, nan, nan), 0u);
  const std::size_t top = mesh.bin_of_position_for_test(1e30f, 1e30f, 1e30f);
  EXPECT_LT(top, 64u);
  EXPECT_EQ(mesh.bin_of_position_for_test(-1e30f, 4.0f, 4.0f),
            mesh.bin_of_position_for_test(0.5f, 4.0f, 4.0f));
}

// --- core: injector + regions ----------------------------------------------

TEST(MemFaultInjector, DrawIsDeterministicAndRateGated) {
  const core::MemFaultInjector always(1.0, 1234);
  const core::MemFaultInjector never(0.0, 1234);
  for (std::uint64_t opp = 0; opp < 64; ++opp) {
    const auto a = always.draw(opp);
    const auto b = always.draw(opp);
    ASSERT_TRUE(a.has_value());
    EXPECT_FALSE(never.draw(opp).has_value());
    EXPECT_EQ(a->field, b->field);
    EXPECT_EQ(a->index, b->index);
    EXPECT_EQ(a->bit, b->bit);
    EXPECT_LT(a->field, core::MemFaultInjector::kFieldCount);
    EXPECT_LT(a->bit, 32u);
  }
  // Rate ~0.25 hits roughly a quarter of opportunities.
  const core::MemFaultInjector some(0.25, 99);
  int hits = 0;
  for (std::uint64_t opp = 0; opp < 400; ++opp) {
    if (some.draw(opp)) ++hits;
  }
  EXPECT_GT(hits, 50);
  EXPECT_LT(hits, 200);
}

TEST(MemFaultInjector, ApplyFlipTogglesExactlyOneBit) {
  Particles p;
  p.push_back(0, Species::kGas, 1.5f, 2.5f, 3.5f, -1.0f, 0.5f, 2.0f, 1.25f);
  core::MemFaultInjector::Flip flip;
  flip.field = 7;  // mass
  flip.index = 0;
  flip.bit = 31;   // sign
  const std::string what = core::apply_flip(p, flip);
  EXPECT_EQ(p.mass[0], -1.25f);
  EXPECT_NE(what.find("mass[0]"), std::string::npos);
  // Re-applying restores the original value (XOR).
  core::apply_flip(p, flip);
  EXPECT_EQ(p.mass[0], 1.25f);
}

TEST(SdcCheckNames, RendersMaskBits) {
  EXPECT_EQ(core::sdc_check_names(0), "ok");
  EXPECT_EQ(core::sdc_check_names(core::kSdcCheckNonFinite), "nonfinite");
  EXPECT_EQ(core::sdc_check_names(core::kSdcCheckBounds |
                                  core::kSdcCheckConservation),
            "bounds|conservation");
  EXPECT_EQ(core::sdc_check_names(core::kSdcCheckSnapshot), "snapshot");
}

// --- core: auditor ----------------------------------------------------------

core::AuditContext unit_context() {
  core::AuditContext ctx;
  ctx.box = 8.0;
  ctx.position_margin = 2.0;
  ctx.domain.lo = {0.0, 0.0, 0.0};
  ctx.domain.hi = {8.0, 8.0, 8.0};
  ctx.domain_slack = 1.0;
  ctx.cm_bin_width = 2.0;
  return ctx;
}

Particles unit_particles(std::size_t n) {
  Particles p;
  for (std::size_t i = 0; i < n; ++i) {
    p.push_back(i, Species::kDarkMatter,
                0.25f + 7.5f * static_cast<float>(i) / static_cast<float>(n),
                4.0f, 4.0f, 10.0f, -5.0f, 2.0f, 1.0f);
  }
  return p;
}

TEST(SdcAuditor, DetectionLattice) {
  comm::World world(1);
  world.run([&](comm::Communicator& comm) {
    core::SdcAuditor auditor(core::SdcConfig{});
    const auto ctx = unit_context();

    // Clean state passes every gate.
    auto p = unit_particles(32);
    EXPECT_EQ(auditor.audit(comm, p, ctx), 0u);
    EXPECT_TRUE(auditor.last_failure().empty());

    // NaN position -> nonfinite (plus bounds: NaN is outside too).
    p = unit_particles(32);
    p.x[3] = std::numeric_limits<float>::quiet_NaN();
    auto mask = auditor.audit(comm, p, ctx);
    EXPECT_TRUE(mask & core::kSdcCheckNonFinite);
    EXPECT_NE(auditor.last_failure().find("particle 3"), std::string::npos);

    // Superluminal velocity -> bounds.
    p = unit_particles(32);
    p.vy[7] = 1.0e7f;
    mask = auditor.audit(comm, p, ctx);
    EXPECT_TRUE(mask & core::kSdcCheckBounds);
    EXPECT_FALSE(mask & core::kSdcCheckNonFinite);

    // Negative mass -> bounds.
    p = unit_particles(32);
    p.mass[0] = -1.0f;
    EXPECT_TRUE(auditor.audit(comm, p, ctx) & core::kSdcCheckBounds);

    // Escaped position -> bounds + occupancy census agreement.
    p = unit_particles(32);
    p.x[1] = 500.0f;
    mask = auditor.audit(comm, p, ctx);
    EXPECT_TRUE(mask & core::kSdcCheckBounds);
    EXPECT_TRUE(mask & core::kSdcCheckOccupancy);

    // Timestep census anomalies gate the verdict.
    p = unit_particles(32);
    auto bad_ctx = ctx;
    bad_ctx.timestep.nonfinite = 2;
    EXPECT_TRUE(auditor.audit(comm, p, bad_ctx) & core::kSdcCheckTimestep);

    // Solver-side non-finite census gates the verdict.
    bad_ctx = ctx;
    bad_ctx.solver_nonfinite = 1;
    EXPECT_TRUE(auditor.audit(comm, p, bad_ctx) & core::kSdcCheckNonFinite);
  });
}

TEST(SdcAuditor, ConservationGates) {
  comm::World world(2);
  world.run([&](comm::Communicator& comm) {
    core::SdcAuditor auditor(core::SdcConfig{});
    auto ctx = unit_context();
    auto p = unit_particles(32);
    ctx.reference = core::measure_conservation(comm, p);

    // Unchanged state: no drift.
    EXPECT_EQ(auditor.audit(comm, p, ctx), 0u);

    // Rank 1 loses mass silently -> every rank gets the conservation bit.
    auto corrupt = p;
    if (comm.rank() == 1) corrupt.mass[4] = 0.25f;
    const auto mask = auditor.audit(comm, corrupt, ctx);
    EXPECT_TRUE(mask & core::kSdcCheckConservation);

    // Energy explosion (one particle at 1e4 km/s is ~1e5x the budget of
    // the 32 slow particles) -> conservation bit on all ranks.
    auto hot = p;
    if (comm.rank() == 0) hot.vx[0] = 1.0e4f;
    EXPECT_TRUE(auditor.audit(comm, hot, ctx) & core::kSdcCheckConservation);
  });
}

// --- param file -------------------------------------------------------------

TEST(SdcParams, KeysParseAndTyposAreReported) {
  const auto file = core::ParamFile::parse(
      "sdc = on\n"
      "sdc_page_bytes = 4096\n"
      "sdc_max_replays = 5\n"
      "sdc_mass_drift_tol = 1e-8\n"
      "sdc_energy_growth = 50\n"
      "sdc_momentum_drift_tol = 0.25\n"
      "sdc_max_velocity = 1e5\n"
      "sdc_max_u = 1e10\n"
      "sdc_occupancy_factor = 256\n"
      "sdc_max_replay = 9\n");  // typo: must be reported, not absorbed
  ASSERT_TRUE(file.has_value());
  core::SimConfig config;
  const auto unknown = file->apply(config);
  EXPECT_TRUE(config.sdc.enabled);
  EXPECT_EQ(config.sdc.page_bytes, 4096u);
  EXPECT_EQ(config.sdc.max_replays, 5);
  EXPECT_DOUBLE_EQ(config.sdc.mass_drift_tol, 1e-8);
  EXPECT_DOUBLE_EQ(config.sdc.energy_growth_factor, 50.0);
  EXPECT_DOUBLE_EQ(config.sdc.momentum_drift_tol, 0.25);
  EXPECT_DOUBLE_EQ(config.sdc.max_velocity, 1e5);
  EXPECT_DOUBLE_EQ(config.sdc.max_internal_energy, 1e10);
  EXPECT_DOUBLE_EQ(config.sdc.occupancy_factor, 256.0);
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "sdc_max_replay");
}

// --- end-to-end drills ------------------------------------------------------

core::SimConfig drill_config() {
  core::SimConfig config;
  config.np = 8;
  config.box = 24.0;
  config.ng = 16;
  config.z_init = 20.0;
  config.z_final = 5.0;
  config.num_pm_steps = 3;
  config.hydro = false;
  config.subgrid_on = false;
  config.bins.max_depth = 4;
  config.seed = 99;
  config.threads = 2;
  config.sdc.enabled = true;
  return config;
}

/// Injector that flips the mass sign bit of one slot at exactly the
/// scripted opportunities. A sign flip on mass is detectable for ANY
/// particle value (mass must sit in [0, max]), keeping the drill
/// deterministic.
class ScriptedFlips : public core::MemFaultInjector {
 public:
  explicit ScriptedFlips(std::vector<std::uint64_t> opportunities)
      : core::MemFaultInjector(0.0, 0),
        opportunities_(std::move(opportunities)) {}

  std::optional<Flip> draw(std::uint64_t opportunity) const override {
    if (std::find(opportunities_.begin(), opportunities_.end(), opportunity) ==
        opportunities_.end()) {
      return std::nullopt;
    }
    Flip flip;
    flip.field = 7;  // mass
    flip.index = 5;
    flip.bit = 31;   // sign bit
    return flip;
  }

 private:
  std::vector<std::uint64_t> opportunities_;
};

void expect_bitwise_equal(const Particles& got, const Particles& expect) {
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got.id[i], expect.id[i]) << i;
    ASSERT_EQ(got.x[i], expect.x[i]) << i;
    ASSERT_EQ(got.y[i], expect.y[i]) << i;
    ASSERT_EQ(got.z[i], expect.z[i]) << i;
    ASSERT_EQ(got.vx[i], expect.vx[i]) << i;
    ASSERT_EQ(got.vy[i], expect.vy[i]) << i;
    ASSERT_EQ(got.vz[i], expect.vz[i]) << i;
    ASSERT_EQ(got.mass[i], expect.mass[i]) << i;
  }
}

TEST(SdcDrill, RollbackReplayMatchesUninjectedRunBitwise) {
  // The acceptance drill: a seeded bit flip lands in a live particle
  // array mid-step; the audit detects it, the step rolls back to the
  // in-memory snapshot and replays, and the final 3-step state is
  // bitwise identical to a run that never saw the flip.
  const int num_ranks = 2;
  comm::World world(num_ranks);

  std::vector<Particles> reference(num_ranks);
  world.run([&](comm::Communicator& comm) {
    const auto sim_config = drill_config();
    core::SimContext ctx(sim_config.threads);
    core::Simulation sim(ctx, comm, sim_config);
    sim.initialize();
    const auto result = sim.run();
    ASSERT_TRUE(result.completed);
    EXPECT_EQ(result.sdc_audits, 3u);  // one clean audit per step
    EXPECT_EQ(result.sdc_detections, 0u);
    reference[static_cast<std::size_t>(comm.rank())] = sim.particles();
  });

  world.run([&](comm::Communicator& comm) {
    const auto sim_config = drill_config();
    core::SimContext ctx(sim_config.threads);
    core::Simulation sim(ctx, comm, sim_config);
    sim.initialize();
    // Each step consumes 2 opportunities (one per drill point); step 0
    // uses {0,1}, step 1 uses {2,3}. Flip once, mid-step-1.
    const ScriptedFlips injector({2});
    sim.set_memory_fault_injector(&injector);
    const auto result = sim.run();
    sim.set_memory_fault_injector(nullptr);  // injector dies before sim
    ASSERT_TRUE(result.completed);
    EXPECT_EQ(result.sdc_injected_flips, 1u);
    EXPECT_EQ(result.sdc_detections, 1u);
    EXPECT_EQ(result.sdc_rollbacks, 1u);
    EXPECT_EQ(result.sdc_replays, 1u);
    EXPECT_EQ(result.sdc_escalations, 0u);
    EXPECT_EQ(result.sdc_audits, 4u);  // 3 steps + 1 replayed attempt
    EXPECT_EQ(result.steps_done, 3u);
    ASSERT_EQ(result.reports.size(), 3u);
    EXPECT_TRUE(result.reports[1].sdc.failed_checks != 0u);

    expect_bitwise_equal(sim.particles(),
                         reference[static_cast<std::size_t>(comm.rank())]);
  });
}

TEST(SdcDrill, PersistentFlipsExhaustReplayBudgetAndEscalate) {
  // Flips at every drill point of one step burn the whole replay budget;
  // the step must escalate to checkpoint restore and the campaign still
  // completes with the right final state.
  const int num_ranks = 2;
  TempDir dir;
  comm::World world(num_ranks);
  io::ThrottledStore pfs(io::StoreConfig{dir.str() + "/pfs", 0.0, 0.0, true});
  std::vector<std::unique_ptr<io::ThrottledStore>> nvmes;
  for (int r = 0; r < num_ranks; ++r) {
    nvmes.push_back(std::make_unique<io::ThrottledStore>(io::StoreConfig{
        dir.str() + "/nvme" + std::to_string(r), 0.0, 0.0, false}));
  }

  auto config = drill_config();
  config.sdc.max_replays = 1;

  std::vector<Particles> reference(num_ranks);
  world.run([&](comm::Communicator& comm) {
    core::SimContext ctx(config.threads);
    core::Simulation sim(ctx, comm, config);
    sim.initialize();
    const auto result = sim.run();
    ASSERT_TRUE(result.completed);
    reference[static_cast<std::size_t>(comm.rank())] = sim.particles();
  });

  world.run([&](comm::Communicator& comm) {
    io::MultiTierWriter writer(*nvmes[static_cast<std::size_t>(comm.rank())],
                               pfs, io::MultiTierConfig{comm.rank(), 8});
    core::SimContext ctx(config.threads);
    core::Simulation sim(ctx, comm, config);
    sim.initialize();
    // Step 0 is clean ({0,1}) and checkpoints. Step 1's first attempt
    // (drill points {2,3}) and its single replay ({4,5}) are each
    // poisoned at ONE drill point (two flips at the same slot would XOR
    // back to clean) -> escalation. The re-run of step 1 after
    // recover() ({6,7}) is clean.
    const ScriptedFlips injector({2, 4});
    sim.set_memory_fault_injector(&injector);
    auto result = sim.run(&writer, &pfs);
    sim.set_memory_fault_injector(nullptr);  // injector dies before sim
    EXPECT_TRUE(result.completed);
    EXPECT_EQ(result.sdc_detections, 2u);
    EXPECT_EQ(result.sdc_rollbacks, 1u);
    EXPECT_EQ(result.sdc_replays, 1u);
    EXPECT_EQ(result.sdc_escalations, 1u);
    EXPECT_EQ(result.sdc_injected_flips, 2u);
    EXPECT_EQ(result.recovery_attempts, 1u);
    EXPECT_EQ(result.checkpoint_fallbacks, 0u);
    EXPECT_EQ(result.restarts_from_ics, 0u);
    EXPECT_EQ(result.steps_done, 3u);

    expect_bitwise_equal(sim.particles(),
                         reference[static_cast<std::size_t>(comm.rank())]);
    writer.drain();
    comm.barrier();
  });
}

TEST(SdcDrill, EscalationWithCorruptNewestCheckpointFallsBack) {
  // The PR 1 x PR 3 interaction: the replay budget is exhausted AND the
  // newest at-rest checkpoint is bit-flipped. recover() must reject the
  // corrupt checkpoint (CRC), fall back one step further, and the run
  // must still finish bitwise-identical to the clean campaign.
  const int num_ranks = 2;
  TempDir dir;
  comm::World world(num_ranks);
  io::ThrottledStore pfs(io::StoreConfig{dir.str() + "/pfs", 0.0, 0.0, true});
  std::vector<std::unique_ptr<io::ThrottledStore>> nvmes;
  for (int r = 0; r < num_ranks; ++r) {
    nvmes.push_back(std::make_unique<io::ThrottledStore>(io::StoreConfig{
        dir.str() + "/nvme" + std::to_string(r), 0.0, 0.0, false}));
  }

  auto config = drill_config();
  config.sdc.max_replays = 1;

  std::vector<Particles> reference(num_ranks);
  world.run([&](comm::Communicator& comm) {
    core::SimContext ctx(config.threads);
    core::Simulation sim(ctx, comm, config);
    sim.initialize();
    const auto result = sim.run();
    ASSERT_TRUE(result.completed);
    reference[static_cast<std::size_t>(comm.rank())] = sim.particles();
  });

  world.run([&](comm::Communicator& comm) {
    io::MultiTierWriter writer(*nvmes[static_cast<std::size_t>(comm.rank())],
                               pfs, io::MultiTierConfig{comm.rank(), 8});
    core::SimContext ctx(config.threads);
    core::Simulation sim(ctx, comm, config);
    sim.initialize();
    // Steps 0 and 1 run clean and checkpoint (steps 1 and 2 on disk).
    sim.step(&writer);
    sim.step(&writer);
    writer.drain();
    comm.barrier();
    // Silently flip a bit of every rank's newest (step 2) payload.
    if (comm.rank() == 0) {
      for (int r = 0; r < num_ranks; ++r) {
        const auto path =
            pfs.full_path(io::MultiTierWriter::checkpoint_path(2, r));
        std::fstream file(path,
                          std::ios::binary | std::ios::in | std::ios::out);
        ASSERT_TRUE(static_cast<bool>(file));
        file.seekg(80);
        char byte;
        file.read(&byte, 1);
        byte = static_cast<char>(byte ^ 0x10);
        file.seekp(80);
        file.write(&byte, 1);
      }
    }
    comm.barrier();

    // Step 2 (the third PM step) has consumed opportunities {0..3};
    // poison its first attempt (drill points {4,5}) and only replay
    // ({6,7}) at one drill point each (a pair at the same slot XORs
    // back to clean).
    const ScriptedFlips injector({4, 6});
    sim.set_memory_fault_injector(&injector);
    auto result = sim.run(&writer, &pfs);
    sim.set_memory_fault_injector(nullptr);  // injector dies before sim
    EXPECT_TRUE(result.completed);
    EXPECT_EQ(result.sdc_escalations, 1u);
    // Newest checkpoint (step 2) failed validation -> fell back to 1.
    EXPECT_EQ(result.recovery_attempts, 2u);
    EXPECT_EQ(result.checkpoint_fallbacks, 1u);
    EXPECT_EQ(result.restarts_from_ics, 0u);
    // Recovered at step 1: replays steps 1 and 2 (clean: the flip
    // window has passed).
    EXPECT_EQ(result.steps_done, 2u);

    expect_bitwise_equal(sim.particles(),
                         reference[static_cast<std::size_t>(comm.rank())]);
    writer.drain();
    comm.barrier();
  });
}

TEST(SdcDrill, GuardrailsOffAndOnAgreeBitwiseWithoutFaults) {
  // The guardrail layer must be a pure observer when nothing is wrong:
  // snapshot + audit + commit must not perturb the trajectory.
  const int num_ranks = 2;
  comm::World world(num_ranks);
  std::vector<Particles> reference(num_ranks);
  world.run([&](comm::Communicator& comm) {
    auto config = drill_config();
    config.sdc.enabled = false;
    core::SimContext ctx(config.threads);
    core::Simulation sim(ctx, comm, config);
    sim.initialize();
    ASSERT_TRUE(sim.run().completed);
    reference[static_cast<std::size_t>(comm.rank())] = sim.particles();
  });
  world.run([&](comm::Communicator& comm) {
    const auto sim_config = drill_config();
    core::SimContext ctx(sim_config.threads);
    core::Simulation sim(ctx, comm, sim_config);
    sim.initialize();
    const auto result = sim.run();
    ASSERT_TRUE(result.completed);
    EXPECT_EQ(result.sdc_audits, 3u);
    EXPECT_EQ(result.sdc_detections, 0u);
    expect_bitwise_equal(sim.particles(),
                         reference[static_cast<std::size_t>(comm.rank())]);
  });
}

}  // namespace
}  // namespace crkhacc
