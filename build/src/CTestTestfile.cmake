# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("comm")
subdirs("fft")
subdirs("cosmology")
subdirs("mesh")
subdirs("tree")
subdirs("gpu")
subdirs("sph")
subdirs("gravity")
subdirs("subgrid")
subdirs("integrator")
subdirs("analysis")
subdirs("io")
subdirs("core")
