#include "gravity/short_range.h"

#include <optional>

#include "cosmology/units.h"
#include "util/trace.h"

namespace crkhacc::gravity {

gpu::LaunchStats compute_short_range(
    Particles& particles, const tree::ChainingMesh& mesh,
    const mesh::ForceSplit* split, const GravityConfig& config, double a,
    const std::uint8_t* active, gpu::FlopRegistry& flops,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>* pairs,
    util::ThreadPool* pool) {
  // Without a split the kernel is pure Newtonian and every neighbor-bin
  // leaf pair interacts (1e15 >> any box, still finite when squared).
  const double cutoff = split ? split->cutoff() : 1e15;
  const float scale = static_cast<float>(units::kGravity / (a * a));
  ShortRangeKernel kernel(particles, active, split, scale, config.softening,
                          static_cast<float>(cutoff));
  std::vector<std::pair<std::uint32_t, std::uint32_t>> own_pairs;
  if (!pairs) {
    own_pairs = mesh.interaction_pairs(cutoff);
    pairs = &own_pairs;
  }
  // Build the plan unconditionally (the serial path reads its pair list
  // too) so plan construction is one traced structural point per call,
  // independent of thread count and LaunchSchedule.
  std::optional<gpu::LaunchPlan> plan;
  {
    HACC_TRACE_SPAN("launch_plan");
    plan.emplace(mesh, *pairs);
  }
  gpu::LaunchStats stats;
  {
    HACC_TRACE_SPAN(ShortRangeKernel::kName);
    stats = gpu::launch_pair_kernel(kernel, mesh, *plan, config.launch, pool);
  }
  flops.add(ShortRangeKernel::kName, stats.flops, stats.seconds);
  return stats;
}

void direct_sum_reference(Particles& particles, const mesh::ForceSplit* split,
                          float softening, double accel_scale) {
  const std::size_t n = particles.size();
  const float soft2 = softening * softening;
  for (std::size_t i = 0; i < n; ++i) {
    double ax = 0.0, ay = 0.0, az = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double dx = static_cast<double>(particles.x[i]) - particles.x[j];
      const double dy = static_cast<double>(particles.y[i]) - particles.y[j];
      const double dz = static_cast<double>(particles.z[i]) - particles.z[j];
      const double r2 = dx * dx + dy * dy + dz * dz;
      if (r2 <= 0.0) continue;
      const double r = std::sqrt(r2);
      const double soft_r2 = r2 + soft2;
      const double inv_r3 = 1.0 / (soft_r2 * std::sqrt(soft_r2));
      const double fs = split ? split->short_range_factor(r) : 1.0;
      const double f = -particles.mass[j] * fs * inv_r3;
      ax += f * dx;
      ay += f * dy;
      az += f * dz;
    }
    particles.ax[i] += static_cast<float>(accel_scale * ax);
    particles.ay[i] += static_cast<float>(accel_scale * ay);
    particles.az[i] += static_cast<float>(accel_scale * az);
  }
}

}  // namespace crkhacc::gravity
