#include "mesh/pm_solver.h"

#include <cmath>
#include <numbers>
#include <unordered_map>

#include "cosmology/units.h"
#include "util/assertions.h"
#include "util/trace.h"

namespace crkhacc::mesh {
namespace {

constexpr double kPi = std::numbers::pi;

double sinc(double x) {
  if (std::abs(x) < 1e-8) return 1.0;
  return std::sin(x) / x;
}

/// One CIC cell contribution routed to a slab owner.
struct CellContribution {
  std::uint64_t cell;  ///< global (z*ng + y)*ng + x
  double value;
};

/// One fetched force plane: global z index + 3*ng*ng force values.
struct PlaneHeader {
  std::int64_t plane;
};

}  // namespace

CicAxis cic_axis(double position, double cell_size) {
  const double t = position / cell_size - 0.5;
  const double base = std::floor(t);
  return CicAxis{static_cast<long>(base), t - base};
}

PMSolver::PMSolver(comm::Communicator& comm,
                   const comm::CartDecomposition& decomp, const PMConfig& config)
    : comm_(comm),
      decomp_(decomp),
      config_(config),
      split_(config.rs_cells * config.box / static_cast<double>(config.ng),
             config.split_threshold),
      fft_(comm, config.ng) {
  CHECK(config.ng >= 4);
  CHECK(config.box > 0.0);
}

double PMSolver::greens(double kx, double ky, double kz) const {
  const double k2 = kx * kx + ky * ky + kz * kz;
  if (k2 <= 0.0) return 0.0;
  const double cell = config_.box / static_cast<double>(config_.ng);
  // CIC window is sinc^2 per dimension; deconvolve deposit + interpolation.
  const double wx = sinc(0.5 * kx * cell);
  const double wy = sinc(0.5 * ky * cell);
  const double wz = sinc(0.5 * kz * cell);
  const double w2 = wx * wx * wy * wy * wz * wz;
  const double deconv = 1.0 / (w2 * w2);
  return -4.0 * kPi * units::kGravity *
         split_.long_range_filter(std::sqrt(k2)) * deconv / k2;
}

std::vector<double> PMSolver::deposit(comm::Communicator& comm,
                                      const Particles& particles) {
  HACC_TRACE_SPAN("pm_deposit");
  const std::size_t ng = config_.ng;
  const double cell = config_.box / static_cast<double>(ng);
  const double cell_volume = cell * cell * cell;
  const auto& zpart = fft_.z_partition();

  auto wrap_cell = [ng](long c) {
    long m = c % static_cast<long>(ng);
    if (m < 0) m += static_cast<long>(ng);
    return static_cast<std::size_t>(m);
  };

  // Per-chunk deposit batches, merged in fixed chunk order. The chunk
  // decomposition depends only on the particle count, and both serial and
  // pooled paths walk the same chunks, so the send streams and the
  // chunk-folded mass sum are bitwise identical for every thread count.
  const int p = comm.size();
  const std::size_t nloc = particles.size();
  constexpr std::size_t kDepositGrain = 2048;
  const std::size_t nchunks =
      nloc == 0 ? 0 : (nloc + kDepositGrain - 1) / kDepositGrain;
  struct ChunkDeposit {
    std::vector<std::vector<CellContribution>> sends;
    double mass = 0.0;
  };
  std::vector<ChunkDeposit> chunk_out(nchunks);
  auto deposit_range = [&](std::size_t lo, std::size_t hi, std::size_t c) {
    ChunkDeposit& out = chunk_out[c];
    out.sends.resize(static_cast<std::size_t>(p));
    for (std::size_t i = lo; i < hi; ++i) {
      if (!particles.is_owned(i)) continue;  // ghosts deposited by their owner
      out.mass += particles.mass[i];
      const CicAxis axis_x = cic_axis(particles.x[i], cell);
      const CicAxis axis_y = cic_axis(particles.y[i], cell);
      const CicAxis axis_z = cic_axis(particles.z[i], cell);
      const double rho = particles.mass[i] / cell_volume;
      for (int dz = 0; dz < 2; ++dz) {
        const std::size_t cz = wrap_cell(axis_z.cell + dz);
        const double wz = dz ? axis_z.w_hi : 1.0 - axis_z.w_hi;
        const int owner = zpart.owner(cz);
        for (int dy = 0; dy < 2; ++dy) {
          const std::size_t cy = wrap_cell(axis_y.cell + dy);
          const double wy = dy ? axis_y.w_hi : 1.0 - axis_y.w_hi;
          for (int dx = 0; dx < 2; ++dx) {
            const std::size_t cx = wrap_cell(axis_x.cell + dx);
            const double wx = dx ? axis_x.w_hi : 1.0 - axis_x.w_hi;
            out.sends[static_cast<std::size_t>(owner)].push_back(
                CellContribution{
                    (static_cast<std::uint64_t>(cz) * ng + cy) * ng + cx,
                    rho * wz * wy * wx});
          }
        }
      }
    }
  };
  if (pool_ && pool_->num_threads() > 1) {
    pool_->parallel_for(0, nloc, kDepositGrain, deposit_range);
  } else {
    for (std::size_t c = 0; c < nchunks; ++c) {
      deposit_range(c * kDepositGrain,
                    std::min((c + 1) * kDepositGrain, nloc), c);
    }
  }
  std::vector<std::vector<CellContribution>> sends(static_cast<std::size_t>(p));
  double local_mass = 0.0;
  for (auto& out : chunk_out) {
    local_mass += out.mass;
    for (std::size_t d = 0; d < out.sends.size(); ++d) {
      sends[d].insert(sends[d].end(), out.sends[d].begin(),
                      out.sends[d].end());
    }
  }

  const double total_mass =
      comm.allreduce_scalar(local_mass, comm::ReduceOp::kSum);
  mean_density_ = total_mass / (config_.box * config_.box * config_.box);

  auto recvs = comm.alltoallv(sends);
  const std::size_t z0 = fft_.local_z_start();
  std::vector<double> density(fft_.local_z_count() * ng * ng, 0.0);
  for (const auto& batch : recvs) {
    for (const auto& c : batch) {
      const std::size_t cz = static_cast<std::size_t>(c.cell / (ng * ng));
      const std::size_t rem = static_cast<std::size_t>(c.cell % (ng * ng));
      HACC_ASSERT(cz >= z0 && cz < z0 + fft_.local_z_count());
      density[(cz - z0) * ng * ng + rem] += c.value;
    }
  }
  return density;
}

std::vector<fft::Complex> PMSolver::overdensity_spectrum(
    comm::Communicator& comm, const Particles& particles) {
  const std::size_t ng = config_.ng;
  auto density = deposit(comm, particles);
  auto& real = fft_.real_data();
  const double inv_mean = mean_density_ > 0.0 ? 1.0 / mean_density_ : 0.0;
  for (std::size_t s = 0; s < density.size(); ++s) {
    real[s] = fft::Complex(density[s] * inv_mean - 1.0, 0.0);
  }
  fft_.forward();
  std::vector<fft::Complex> spectrum = fft_.k_data();
  // Deconvolve the CIC deposit window.
  const double cell = config_.box / static_cast<double>(ng);
  const std::size_t kx0 = fft_.local_kx_start();
  const std::size_t nx_local = fft_.local_kx_count();
  for (std::size_t xl = 0; xl < nx_local; ++xl) {
    const double kx = 2.0 * kPi / config_.box *
                      static_cast<double>(fft::freq_of(kx0 + xl, ng));
    const double wx = sinc(0.5 * kx * cell);
    for (std::size_t y = 0; y < ng; ++y) {
      const double ky = 2.0 * kPi / config_.box *
                        static_cast<double>(fft::freq_of(y, ng));
      const double wy = sinc(0.5 * ky * cell);
      for (std::size_t z = 0; z < ng; ++z) {
        const double kz = 2.0 * kPi / config_.box *
                          static_cast<double>(fft::freq_of(z, ng));
        const double wz = sinc(0.5 * kz * cell);
        const double w = wx * wx * wy * wy * wz * wz;
        spectrum[(xl * ng + y) * ng + z] /= w;
      }
    }
  }
  return spectrum;
}

void PMSolver::apply(comm::Communicator& comm, Particles& particles,
                     double overload) {
  const std::size_t ng = config_.ng;
  const double cell = config_.box / static_cast<double>(ng);

  // 1-2. Deposit and transform the overdensity.
  auto density = deposit(comm, particles);
  auto& real = fft_.real_data();
  for (std::size_t s = 0; s < density.size(); ++s) {
    real[s] = fft::Complex(density[s] - mean_density_, 0.0);
  }
  fft_.forward();
  const std::vector<fft::Complex> rho_k = fft_.k_data();  // saved spectrum

  // 3-4. One inverse transform per force component.
  const std::size_t kx0 = fft_.local_kx_start();
  const std::size_t nx_local = fft_.local_kx_count();
  const std::size_t nz_local = fft_.local_z_count();
  std::array<std::vector<double>, 3> force;
  for (int d = 0; d < 3; ++d) {
    util::TraceRecorder::Span gradient_span(util::TraceRecorder::current(),
                                            "pm_gradient");
    auto& kdata = fft_.k_data();
    for (std::size_t xl = 0; xl < nx_local; ++xl) {
      const double kx = 2.0 * kPi / config_.box *
                        static_cast<double>(fft::freq_of(kx0 + xl, ng));
      for (std::size_t y = 0; y < ng; ++y) {
        const double ky = 2.0 * kPi / config_.box *
                          static_cast<double>(fft::freq_of(y, ng));
        for (std::size_t z = 0; z < ng; ++z) {
          const double kz = 2.0 * kPi / config_.box *
                            static_cast<double>(fft::freq_of(z, ng));
          const double g = greens(kx, ky, kz);
          const double kd = (d == 0) ? kx : (d == 1) ? ky : kz;
          // F_d(k) = -i k_d phi_k
          kdata[(xl * ng + y) * ng + z] =
              fft::Complex(0.0, -kd * g) * rho_k[(xl * ng + y) * ng + z];
        }
      }
    }
    gradient_span.close();
    fft_.backward();
    auto& fd = force[static_cast<std::size_t>(d)];
    fd.resize(nz_local * ng * ng);
    const auto& out = fft_.real_data();
    for (std::size_t s = 0; s < fd.size(); ++s) fd[s] = out[s].real();
  }

  // 5. Fetch the force planes covering this rank's overloaded box.
  util::TraceRecorder::Span fetch_span(util::TraceRecorder::current(),
                                       "pm_fetch_planes");
  const auto obox = decomp_.overloaded_box(comm.rank(), overload);
  // CIC at position z touches cells floor(z/cell - 0.5) and +1; pad by one.
  const long plane_lo = static_cast<long>(std::floor(obox.lo[2] / cell - 0.5)) - 1;
  const long plane_hi = static_cast<long>(std::floor(obox.hi[2] / cell - 0.5)) + 2;
  std::vector<std::int64_t> needed;
  {
    std::vector<bool> seen(ng, false);
    for (long pz = plane_lo; pz <= plane_hi; ++pz) {
      long m = pz % static_cast<long>(ng);
      if (m < 0) m += static_cast<long>(ng);
      if (!seen[static_cast<std::size_t>(m)]) {
        seen[static_cast<std::size_t>(m)] = true;
        needed.push_back(m);
      }
    }
  }

  // Everybody learns everybody's needs, then serves planes it owns.
  std::vector<std::uint8_t> needed_bytes(needed.size() * sizeof(std::int64_t));
  std::memcpy(needed_bytes.data(), needed.data(), needed_bytes.size());
  auto all_needs = comm.allgather_bytes(needed_bytes);

  const auto& zpart = fft_.z_partition();
  const std::size_t z0 = fft_.local_z_start();
  const std::size_t plane_doubles = 3 * ng * ng;
  const int p = comm.size();
  std::vector<std::vector<double>> plane_sends(static_cast<std::size_t>(p));
  for (int d = 0; d < p; ++d) {
    const auto& raw = all_needs[static_cast<std::size_t>(d)];
    const std::size_t count = raw.size() / sizeof(std::int64_t);
    const auto* planes = reinterpret_cast<const std::int64_t*>(raw.data());
    auto& buf = plane_sends[static_cast<std::size_t>(d)];
    for (std::size_t q = 0; q < count; ++q) {
      const auto pz = static_cast<std::size_t>(planes[q]);
      if (zpart.owner(pz) != comm.rank()) continue;
      buf.push_back(static_cast<double>(pz));  // header: plane index
      const std::size_t base = (pz - z0) * ng * ng;
      for (int c = 0; c < 3; ++c) {
        const auto& fc = force[static_cast<std::size_t>(c)];
        buf.insert(buf.end(), fc.begin() + static_cast<std::ptrdiff_t>(base),
                   fc.begin() + static_cast<std::ptrdiff_t>(base + ng * ng));
      }
    }
  }
  auto plane_recvs = comm.alltoallv(plane_sends);

  // Assemble plane index -> local storage offset.
  std::unordered_map<std::size_t, std::size_t> plane_offset;
  std::vector<double> fetched;
  for (const auto& batch : plane_recvs) {
    std::size_t r = 0;
    while (r < batch.size()) {
      const auto pz = static_cast<std::size_t>(batch[r]);
      ++r;
      CHECK(r + plane_doubles <= batch.size() + 0);
      plane_offset[pz] = fetched.size();
      fetched.insert(fetched.end(), batch.begin() + static_cast<std::ptrdiff_t>(r),
                     batch.begin() + static_cast<std::ptrdiff_t>(r + plane_doubles));
      r += plane_doubles;
    }
  }

  fetch_span.close();

  // 6. CIC interpolation for every local particle (ghosts included).
  HACC_TRACE_SPAN("pm_interpolate");
  auto wrap_cell = [ng](long c) {
    long m = c % static_cast<long>(ng);
    if (m < 0) m += static_cast<long>(ng);
    return static_cast<std::size_t>(m);
  };
  // Per-particle gather with disjoint writes; thread-count independent.
  const std::size_t n = particles.size();
  auto interpolate_one = [&](std::size_t i) {
    const CicAxis axis_x = cic_axis(particles.x[i], cell);
    const CicAxis axis_y = cic_axis(particles.y[i], cell);
    const CicAxis axis_z = cic_axis(particles.z[i], cell);
    double f[3] = {0.0, 0.0, 0.0};
    for (int dz = 0; dz < 2; ++dz) {
      const std::size_t cz = wrap_cell(axis_z.cell + dz);
      const double wz = dz ? axis_z.w_hi : 1.0 - axis_z.w_hi;
      const auto it = plane_offset.find(cz);
      CHECK_MSG(it != plane_offset.end(), "force plane not fetched");
      const double* plane = fetched.data() + it->second;
      for (int dy = 0; dy < 2; ++dy) {
        const std::size_t cy = wrap_cell(axis_y.cell + dy);
        const double wy = dy ? axis_y.w_hi : 1.0 - axis_y.w_hi;
        for (int dx = 0; dx < 2; ++dx) {
          const std::size_t cx = wrap_cell(axis_x.cell + dx);
          const double wx = dx ? axis_x.w_hi : 1.0 - axis_x.w_hi;
          const double w = wz * wy * wx;
          const std::size_t idx = cy * ng + cx;
          for (int c = 0; c < 3; ++c) {
            f[c] += w * plane[static_cast<std::size_t>(c) * ng * ng + idx];
          }
        }
      }
    }
    particles.ax[i] = static_cast<float>(f[0]);
    particles.ay[i] = static_cast<float>(f[1]);
    particles.az[i] = static_cast<float>(f[2]);
  };
  if (pool_ && pool_->num_threads() > 1) {
    pool_->parallel_for(0, n, 1024,
                        [&](std::size_t lo, std::size_t hi, std::size_t) {
                          for (std::size_t i = lo; i < hi; ++i) {
                            interpolate_one(i);
                          }
                        });
  } else {
    for (std::size_t i = 0; i < n; ++i) interpolate_one(i);
  }
}

}  // namespace crkhacc::mesh
