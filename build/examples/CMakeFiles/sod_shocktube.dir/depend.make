# Empty dependencies file for sod_shocktube.
# This may be replaced when dependencies are built.
