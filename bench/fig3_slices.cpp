// Figure 3: density and temperature slices at high vs low redshift.
//
// The paper's Fig. 3 contrasts the homogeneous early universe (z = 9,
// well-balanced workload) with the clustered late universe (z = 0, strong
// node-to-node imbalance, feedback-heated gas). We run the miniature
// campaign, capture slices at a high and a low redshift, and report the
// statistics the figure communicates visually: density clumping growth,
// gas temperature evolution, and the per-rank workload spread.
#include <cstdio>
#include <mutex>
#include <vector>

#include "common.h"
#include "comm/world.h"
#include "core/simulation.h"

using namespace crkhacc;

int main() {
  bench::print_header("Fig. 3 — high-z vs low-z density/temperature slices");

  const int ranks = 4;
  core::SimConfig config;
  config.np = 10;
  config.box = 20.0;
  config.ng = 20;
  config.rs_cells = 1.0;
  config.z_init = 30.0;
  config.z_final = 0.5;
  config.num_pm_steps = 10;
  config.bins.max_depth = 4;
  config.hydro = true;
  config.subgrid_on = true;
  config.seed = 333;

  struct Epoch {
    double z = 0.0;
    analysis::SliceResult slice;
    double gas_clumping = 1.0;
    double work_imbalance = 0.0;  ///< max/mean particle-updates per rank
  };
  std::vector<Epoch> epochs;
  std::mutex mutex;

  comm::World world(ranks);
  world.run([&](comm::Communicator& comm) {
    core::SimContext ctx(config.threads);
    core::Simulation sim(ctx, comm, config);
    sim.initialize();
    // Capture after the first step (high z) and at the end (low z).
    for (int s = 0; s < config.num_pm_steps; ++s) {
      const auto report = sim.step();
      if (s == 0 || s == config.num_pm_steps - 1) {
        const auto updates = static_cast<std::int64_t>(report.active_updates);
        const auto max_updates =
            comm.allreduce_scalar(updates, comm::ReduceOp::kMax);
        const auto sum_updates =
            comm.allreduce_scalar(updates, comm::ReduceOp::kSum);
        const auto analysis = sim.run_analysis();
        if (comm.rank() == 0) {
          std::lock_guard<std::mutex> lock(mutex);
          Epoch epoch;
          epoch.z = 1.0 / sim.scale_factor() - 1.0;
          epoch.slice = analysis.slice;
          epoch.gas_clumping = analysis.gas_clumping;
          epoch.work_imbalance = static_cast<double>(max_updates) * ranks /
                                 std::max<double>(1.0, sum_updates);
          epochs.push_back(epoch);
        }
      }
    }
  });

  for (const auto& epoch : epochs) {
    std::printf("\n--- z = %.2f ---\n", epoch.z);
    std::printf("density slice (log overdensity):\n%s",
                analysis::render_density_ascii(epoch.slice, 48).c_str());
    std::printf("gas clumping <rho^2>_V/<rho>_V^2 = %.3f (slice-grid value "
                "%.2f includes shot noise)\n",
                epoch.gas_clumping, epoch.slice.clumping);
    std::printf("gas temperature: median %.2e K, max %.2e K\n",
                epoch.slice.t_median_K, epoch.slice.t_max_K);
    std::printf("per-rank work imbalance (max/mean updates): %.2f\n",
                epoch.work_imbalance);
  }
  if (epochs.size() == 2) {
    std::printf("\npaper's qualitative claims, recomputed:\n");
    std::printf("  gas clumping grows %.1fx from high z to low z (paper: "
                "homogeneous -> strongly clustered)\n",
                epochs[1].gas_clumping / epochs[0].gas_clumping);
    std::printf("  peak gas temperature rises %.1fx (shock + feedback "
                "heating)\n",
                epochs[1].slice.t_max_K / std::max(1.0, epochs[0].slice.t_max_K));
    std::printf("  workload imbalance grows from %.2f to %.2f (paper: "
                "balanced early, uneven late)\n",
                epochs[0].work_imbalance, epochs[1].work_imbalance);
  }
  return 0;
}
