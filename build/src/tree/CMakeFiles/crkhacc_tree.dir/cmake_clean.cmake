file(REMOVE_RECURSE
  "CMakeFiles/crkhacc_tree.dir/chaining_mesh.cpp.o"
  "CMakeFiles/crkhacc_tree.dir/chaining_mesh.cpp.o.d"
  "CMakeFiles/crkhacc_tree.dir/lbvh.cpp.o"
  "CMakeFiles/crkhacc_tree.dir/lbvh.cpp.o.d"
  "libcrkhacc_tree.a"
  "libcrkhacc_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crkhacc_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
