// SIMD warp-lane gate: vector half-warp tiles vs the scalar leaf-owner
// schedule.
//
// The kSimd schedule (gpu/warp_simd.h) maps the warp-split tile onto
// real vector lanes — modulo-replicated SoA lane buffers turn the
// per-step lane rotation into one unaligned load, and the whole
// half-warp row of partner interactions evaluates as a single masked
// vector op. Under the default SimdMath::kExact policy the result is
// BITWISE identical to the serial scalar driver. This bench drives the
// real physics kernels (CRKSPH momentum/energy + short-range gravity,
// warp-split) and gates:
//
//   1. determinism — particle-state checksums under kSimd equal the
//      serial scalar baseline, across warp sizes and thread counts
//      (8-thread pool == serial == scalar);
//   2. fused-math accuracy — SimdMath::kFused gives up bitwise parity
//      for FMA, but its max error stays within a few ulps of each
//      field's accumulation scale;
//   3. speed — kSimd vs kLeafOwner wall time at 8 threads, plus the
//      projected dedicated-lane time (serial remainder + longest worker
//      lane on the thread CPU clock, as in bench/launch_schedule) since
//      on this substitute machine all workers share one core.
//
// --quick shrinks the problem and gates only (1) and (2) — that variant
// runs as a ctest smoke target, so a vector-engine regression fails the
// build rather than the nightly. The full run also gates the >= 1.2x
// simd-vs-scalar pair-kernel speedup claim (wall or projected).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common.h"
#include "core/particles.h"
#include "gpu/device.h"
#include "gpu/launch.h"
#include "gpu/simd.h"
#include "gpu/warp.h"
#include "gravity/short_range.h"
#include "mesh/force_split.h"
#include "sph/eos.h"
#include "sph/pair_kernels.h"
#include "sph/solver.h"
#include "tree/chaining_mesh.h"
#include "util/crc32.h"
#include "util/rng.h"
#include "util/thread_pool.h"

using namespace crkhacc;

namespace {

constexpr double kBox = 8.0;
constexpr float kCutoff = 0.8f;

/// Clustered gas cloud with valid densities and smoothing lengths — the
/// same population shape as bench/launch_schedule.
struct Fixture {
  Particles particles;
  tree::ChainingMesh mesh;
  sph::SphScratch scratch;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;

  explicit Fixture(std::size_t count)
      : mesh(
            [] {
              comm::Box3 box;
              box.lo = {0, 0, 0};
              box.hi = {kBox, kBox, kBox};
              return box;
            }(),
            {2.0, 64}) {
    SplitMix64 rng(7);
    for (std::size_t i = 0; i < count; ++i) {
      float x, y, z;
      if (i % 2) {
        x = static_cast<float>(4.0 + 0.8 * rng.next_gaussian());
        y = static_cast<float>(4.0 + 0.8 * rng.next_gaussian());
        z = static_cast<float>(4.0 + 0.8 * rng.next_gaussian());
        x = std::clamp(x, 0.01f, static_cast<float>(kBox) - 0.01f);
        y = std::clamp(y, 0.01f, static_cast<float>(kBox) - 0.01f);
        z = std::clamp(z, 0.01f, static_cast<float>(kBox) - 0.01f);
      } else {
        x = static_cast<float>(rng.next_double() * kBox);
        y = static_cast<float>(rng.next_double() * kBox);
        z = static_cast<float>(rng.next_double() * kBox);
      }
      const auto idx =
          particles.push_back(i, Species::kGas, x, y, z, 0, 0, 0, 0.5f);
      particles.hsml[idx] = 0.35f;
      particles.u[idx] = 50.0f;
      particles.rho[idx] = 8.0f;
    }
    mesh.build(particles);
    pairs = mesh.interaction_pairs(kCutoff);
    scratch.resize(particles.size());
    for (std::size_t i = 0; i < particles.size(); ++i) {
      scratch.volume[i] = particles.mass[i] / particles.rho[i];
      scratch.press[i] = sph::pressure(particles.rho[i], particles.u[i]);
      scratch.cs[i] = sph::sound_speed(particles.u[i]);
    }
  }
};

const mesh::ForceSplit& force_split() {
  static const mesh::ForceSplit split(0.15);
  return split;
}

struct RunResult {
  gpu::LaunchStats stats;      ///< both kernels, accumulated
  std::uint32_t checksum = 0;  ///< accumulated ax/ay/az/du
  std::vector<float> fields[4];  ///< ax, ay, az, du (for the ULP gate)
};

/// One full evaluation (momentum/energy + gravity) on fresh copies of the
/// particle state, so the accumulated result is comparable bitwise.
RunResult run_once(const Fixture& f, const gpu::LaunchPlan& plan,
                   const gpu::LaunchConfig& config, util::ThreadPool* pool) {
  Particles p = f.particles;
  sph::SphScratch scratch = f.scratch;
  RunResult r;
  {
    sph::MomentumEnergyKernel kernel(p, scratch, nullptr,
                                     sph::ViscosityParams{}, 1.0f);
    r.stats += gpu::launch_pair_kernel(kernel, f.mesh, plan, config, pool);
  }
  {
    gravity::ShortRangeKernel kernel(p, nullptr, &force_split(), 43.0f, 0.05f,
                                     kCutoff);
    r.stats += gpu::launch_pair_kernel(kernel, f.mesh, plan, config, pool);
  }
  std::uint32_t crc = 0;
  crc = crc32(p.ax.data(), p.ax.size() * sizeof(float), crc);
  crc = crc32(p.ay.data(), p.ay.size() * sizeof(float), crc);
  crc = crc32(p.az.data(), p.az.size() * sizeof(float), crc);
  crc = crc32(p.du.data(), p.du.size() * sizeof(float), crc);
  r.checksum = crc;
  r.fields[0] = std::move(p.ax);
  r.fields[1] = std::move(p.ay);
  r.fields[2] = std::move(p.az);
  r.fields[3] = std::move(p.du);
  return r;
}

/// Max error between two runs, in ulps of each field's max magnitude
/// (see tests/test_simd.cpp for why pointwise ULP distance is the wrong
/// metric for cancellation-dominated accumulated sums).
double max_scale_ulp(const RunResult& a, const RunResult& b) {
  double worst = 0.0;
  for (int k = 0; k < 4; ++k) {
    float scale = 0.0f;
    for (std::size_t i = 0; i < a.fields[k].size(); ++i) {
      scale = std::max({scale, std::fabs(a.fields[k][i]),
                        std::fabs(b.fields[k][i])});
    }
    if (scale <= 0.0f) continue;
    const float ulp =
        std::nextafterf(scale, std::numeric_limits<float>::infinity()) - scale;
    for (std::size_t i = 0; i < a.fields[k].size(); ++i) {
      worst = std::max(
          worst, std::fabs(static_cast<double>(a.fields[k][i]) -
                           b.fields[k][i]) /
                     static_cast<double>(ulp));
    }
  }
  return worst;
}

struct TimedPoint {
  double wall = 0.0;           ///< summed launch wall seconds
  double region_wall = 0.0;    ///< pool wall time inside parallel regions
  double critical_path = 0.0;  ///< longest worker lane

  /// Dedicated-lane projection: the serial remainder plus the longest
  /// worker lane.
  double projected() const {
    return std::max(wall - region_wall, 0.0) + critical_path;
  }
};

/// The pair kernels timed individually. The split-gravity row is the
/// Amdahl control: its per-pair cost is dominated by the double-
/// precision erfc split factor, which stays scalar under kSimd by the
/// bitwise contract — so its ratio bounds what erfc-heavy launches can
/// gain, while the fully-vectorized rows show the lane win.
enum class BenchKernel { kMomentum, kDensity, kGravity, kGravitySplit };

const char* kernel_name(BenchKernel k) {
  switch (k) {
    case BenchKernel::kMomentum: return "momentum";
    case BenchKernel::kDensity: return "density";
    case BenchKernel::kGravity: return "gravity";
    case BenchKernel::kGravitySplit: return "gravity+split";
  }
  return "?";
}

TimedPoint time_kernel(const Fixture& f, const gpu::LaunchPlan& plan,
                       BenchKernel which, gpu::LaunchSchedule schedule,
                       util::ThreadPool& pool, int reps) {
  gpu::LaunchConfig config;
  config.schedule = schedule;
  TimedPoint point;
  // Timing reuses one particle copy across reps: the accumulators keep
  // growing, which changes no code path and nothing we time.
  Particles p = f.particles;
  sph::SphScratch scratch = f.scratch;
  sph::MomentumEnergyKernel momentum(p, scratch, nullptr,
                                     sph::ViscosityParams{}, 1.0f);
  sph::DensityKernel density(p, scratch, nullptr);
  gravity::ShortRangeKernel grav(p, nullptr, nullptr, 43.0f, 0.05f, kCutoff);
  gravity::ShortRangeKernel grav_split(p, nullptr, &force_split(), 43.0f,
                                       0.05f, kCutoff);
  pool.reset_stats();
  for (int rep = 0; rep < reps; ++rep) {
    gpu::LaunchStats s;
    switch (which) {
      case BenchKernel::kMomentum:
        s = gpu::launch_pair_kernel(momentum, f.mesh, plan, config, &pool);
        break;
      case BenchKernel::kDensity:
        s = gpu::launch_pair_kernel(density, f.mesh, plan, config, &pool);
        break;
      case BenchKernel::kGravity:
        s = gpu::launch_pair_kernel(grav, f.mesh, plan, config, &pool);
        break;
      case BenchKernel::kGravitySplit:
        s = gpu::launch_pair_kernel(grav_split, f.mesh, plan, config, &pool);
        break;
    }
    point.wall += s.seconds;
  }
  const auto& stats = pool.stats();
  point.region_wall = stats.wall_seconds;
  point.critical_path = stats.critical_path_seconds();
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const std::size_t count = quick ? 1500 : 4000;
  const int reps = quick ? 2 : 8;

  bench::print_header(
      std::string("SIMD warp-lane gate — kSimd vs scalar leaf-owner") +
      (quick ? " (--quick)" : ""));
  const auto& simd = gpu::simd_support();
  if (!simd.available) {
    std::printf("this build has no SIMD backend (isa: %s) — nothing to "
                "gate\n", simd.isa);
    return 0;
  }
  Fixture f(count);
  const gpu::LaunchPlan plan(f.mesh, f.pairs);
  std::printf("isa %s (%d lanes), particles %zu, leaves %zu, pairs %zu, "
              "plan owners %zu (entries %zu)\n\n",
              simd.isa, simd.width, f.particles.size(), f.mesh.num_leaves(),
              f.pairs.size(), plan.num_owners(), plan.num_entries());

  util::ThreadPool pool(8);
  bool deterministic = true;

  // Gate 1: kSimd bitwise identical to the serial scalar baseline at
  // the SAME warp size (the warp size fixes the tile accumulation order
  // for both drivers), serial and at 8 threads.
  const auto scalar_serial = run_once(f, plan, gpu::LaunchConfig{}, nullptr);
  for (const std::uint32_t warp : {2u, 8u, 64u}) {
    const auto scalar = run_once(
        f, plan, gpu::LaunchConfig{.warp_size = warp}, nullptr);
    gpu::LaunchConfig config{.warp_size = warp,
                             .schedule = gpu::LaunchSchedule::kSimd};
    const auto serial = run_once(f, plan, config, nullptr);
    const auto threaded = run_once(f, plan, config, &pool);
    const bool match = serial.checksum == scalar.checksum &&
                       threaded.checksum == scalar.checksum &&
                       serial.stats.interactions == scalar.stats.interactions;
    deterministic = deterministic && match;
    std::printf("determinism warp %-3u scalar %08x vs simd %08x (serial) / "
                "%08x (8 threads)  %s\n",
                warp, scalar.checksum, serial.checksum, threaded.checksum,
                match ? "OK" : "MISMATCH");
  }

  // Gate 2: fused math is not bitwise (FMA) but stays within a few ulps
  // of each field's accumulation scale — and is itself deterministic.
  const gpu::LaunchConfig fused_config{.schedule = gpu::LaunchSchedule::kSimd,
                                       .simd_math = gpu::SimdMath::kFused};
  const auto fused_serial = run_once(f, plan, fused_config, nullptr);
  const auto fused_threaded = run_once(f, plan, fused_config, &pool);
  const double fused_ulp = max_scale_ulp(scalar_serial, fused_serial);
  const bool fused_deterministic =
      fused_serial.checksum == fused_threaded.checksum;
  constexpr double kFusedUlpGate = 16.0;
  const bool fused_ok = fused_ulp <= kFusedUlpGate && fused_deterministic;
  std::printf("\nfused math: max %.2f scale-ulp vs exact (gate %.0f), "
              "serial %08x vs 8-thread %08x  %s\n",
              fused_ulp, kFusedUlpGate, fused_serial.checksum,
              fused_threaded.checksum, fused_ok ? "OK" : "FAIL");

  // Gate 3: per-kernel wall time at 8 threads, scalar leaf-owner vs
  // vector lanes. The fully-vectorized kernels (momentum, density,
  // plain gravity) carry the speedup gate; the split-gravity row is
  // reported as the Amdahl control (its erfc split factor stays scalar
  // under kSimd by the bitwise contract, bounding that launch's gain).
  std::printf("\n%-14s %-12s %-12s %-9s %-11s\n", "kernel",
              "scalar[s]", "simd[s]", "wall-x", "projected-x");
  bench::print_rule();
  double vector_speedup = 0.0;  // best of the fully-vectorized kernels
  double split_speedup = 0.0;
  std::string per_kernel_json;
  for (const auto which :
       {BenchKernel::kMomentum, BenchKernel::kDensity, BenchKernel::kGravity,
        BenchKernel::kGravitySplit}) {
    const auto scalar_time = time_kernel(
        f, plan, which, gpu::LaunchSchedule::kLeafOwner, pool, reps);
    const auto simd_time =
        time_kernel(f, plan, which, gpu::LaunchSchedule::kSimd, pool, reps);
    const double wall_x =
        simd_time.wall > 0.0 ? scalar_time.wall / simd_time.wall : 1.0;
    const double proj_x = simd_time.projected() > 0.0
                              ? scalar_time.projected() / simd_time.projected()
                              : 1.0;
    std::printf("%-14s %-12.3f %-12.3f %-9.2f %-11.2f\n", kernel_name(which),
                scalar_time.wall, simd_time.wall, wall_x, proj_x);
    const double best = std::max(wall_x, proj_x);
    if (which == BenchKernel::kGravitySplit) {
      split_speedup = best;
    } else {
      vector_speedup = std::max(vector_speedup, best);
    }
    if (!per_kernel_json.empty()) per_kernel_json += ", ";
    per_kernel_json += std::string("\"") + kernel_name(which) +
                       "\": " + std::to_string(wall_x);
  }
  std::printf(
      "\n(single-core substitute machine: workers share one core, so the "
      "projection — serial remainder +\n longest worker lane on the thread "
      "CPU clock — is the dedicated-lane wall time.)\n"
      "(gravity+split is erfc-bound in both drivers; its ratio %.2fx is "
      "the Amdahl control, not the lane win.)\n",
      split_speedup);

  std::printf("\ngates: determinism %s, fused-ulp %s",
              deterministic ? "PASS" : "FAIL", fused_ok ? "PASS" : "FAIL");
  bool ok = deterministic && fused_ok;
  if (!quick) {
    const bool speed_ok = vector_speedup >= 1.2;
    std::printf(", vector-kernel speedup>=1.2x %s (best %.2fx)",
                speed_ok ? "PASS" : "FAIL", vector_speedup);
    ok = ok && speed_ok;
  }
  std::printf("\n");

  std::printf(
      "\nJSON: {\"bench\": \"simd_lanes\", \"quick\": %s, \"isa\": \"%s\", "
      "\"vector_speedup\": %.4f, \"split_speedup\": %.4f, "
      "\"wall_speedups\": {%s}, "
      "\"fused_max_scale_ulp\": %.4f, \"deterministic\": %s}\n",
      quick ? "true" : "false", simd.isa, vector_speedup, split_speedup,
      per_kernel_json.c_str(), fused_ulp,
      deterministic && fused_deterministic ? "true" : "false");
  return ok ? 0 : 1;
}
