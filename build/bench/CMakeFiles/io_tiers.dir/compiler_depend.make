# Empty compiler generated dependencies file for io_tiers.
# This may be replaced when dependencies are built.
