
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/dbscan.cpp" "src/analysis/CMakeFiles/crkhacc_analysis.dir/dbscan.cpp.o" "gcc" "src/analysis/CMakeFiles/crkhacc_analysis.dir/dbscan.cpp.o.d"
  "/root/repo/src/analysis/fof.cpp" "src/analysis/CMakeFiles/crkhacc_analysis.dir/fof.cpp.o" "gcc" "src/analysis/CMakeFiles/crkhacc_analysis.dir/fof.cpp.o.d"
  "/root/repo/src/analysis/galaxies.cpp" "src/analysis/CMakeFiles/crkhacc_analysis.dir/galaxies.cpp.o" "gcc" "src/analysis/CMakeFiles/crkhacc_analysis.dir/galaxies.cpp.o.d"
  "/root/repo/src/analysis/halos.cpp" "src/analysis/CMakeFiles/crkhacc_analysis.dir/halos.cpp.o" "gcc" "src/analysis/CMakeFiles/crkhacc_analysis.dir/halos.cpp.o.d"
  "/root/repo/src/analysis/power_spectrum.cpp" "src/analysis/CMakeFiles/crkhacc_analysis.dir/power_spectrum.cpp.o" "gcc" "src/analysis/CMakeFiles/crkhacc_analysis.dir/power_spectrum.cpp.o.d"
  "/root/repo/src/analysis/slices.cpp" "src/analysis/CMakeFiles/crkhacc_analysis.dir/slices.cpp.o" "gcc" "src/analysis/CMakeFiles/crkhacc_analysis.dir/slices.cpp.o.d"
  "/root/repo/src/analysis/so_masses.cpp" "src/analysis/CMakeFiles/crkhacc_analysis.dir/so_masses.cpp.o" "gcc" "src/analysis/CMakeFiles/crkhacc_analysis.dir/so_masses.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/crkhacc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tree/CMakeFiles/crkhacc_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/crkhacc_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/crkhacc_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/cosmology/CMakeFiles/crkhacc_cosmology.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/crkhacc_fft.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
