// Parameter-file configuration (production-code style).
//
// Flagship runs are driven by parameter files, not recompiles. This is a
// minimal "key = value" reader (# comments, blank lines, whitespace
// tolerant) with typed accessors and a mapper onto SimConfig covering the
// knobs a campaign would tune. Unknown keys are reported so typos fail
// loudly instead of silently running the wrong universe.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/config.h"

namespace crkhacc::core {

class ParamFile {
 public:
  /// Parse "key = value" text; returns nullopt on malformed lines
  /// (reported via log).
  static std::optional<ParamFile> parse(const std::string& text);

  /// Read and parse a file; nullopt if unreadable or malformed.
  static std::optional<ParamFile> load(const std::string& path);

  bool has(const std::string& key) const;
  std::optional<std::string> get_string(const std::string& key) const;
  std::optional<double> get_double(const std::string& key) const;
  std::optional<long> get_int(const std::string& key) const;
  std::optional<bool> get_bool(const std::string& key) const;  ///< true/false/1/0/yes/no

  /// All keys present in the file.
  std::vector<std::string> keys() const;

  /// Apply recognized keys onto `config`; returns the list of keys that
  /// were not recognized OR whose values were rejected (empty = clean).
  /// Rejected values (e.g. warp_size < 2, an unknown launch_schedule)
  /// leave the config's previous value in place and log an error.
  std::vector<std::string> apply(SimConfig& config) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace crkhacc::core
