#include "subgrid/model.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

#include "cosmology/units.h"
#include "util/assertions.h"
#include "util/rng.h"
#include "util/trace.h"

namespace crkhacc::subgrid {

SubgridModel::SubgridModel(const SubgridConfig& config)
    : config_(config),
      cooling_(std::make_shared<const CoolingTable>(config.cooling)) {}

SubgridModel::SubgridModel(const SubgridConfig& config,
                           std::shared_ptr<const CoolingTable> cooling)
    : config_(config), cooling_(std::move(cooling)) {
  CHECK(cooling_ != nullptr);
}

double SubgridModel::n_h_of(const Particles& particles, std::size_t i,
                            double a) const {
  const double rho_proper = particles.rho[i] / (a * a * a);
  return n_hydrogen_cgs(rho_proper, config_.cooling.h,
                        config_.cooling.x_hydrogen);
}

double SubgridModel::dynamical_time(double rho_proper) const {
  if (rho_proper <= 0.0) return std::numeric_limits<double>::infinity();
  return std::sqrt(3.0 * std::numbers::pi /
                   (32.0 * units::kGravity * rho_proper));
}

void SubgridModel::inject_thermal(Particles& particles,
                                  const tree::ChainingMesh& gas_mesh,
                                  float x, float y, float z, double energy,
                                  double metals, SubgridStats& stats) {
  const float radius = static_cast<float>(
      std::min(config_.injection_radius, 0.99 * gas_mesh.min_bin_width()));
  // Collect kernel-weighted gas receivers.
  struct Receiver {
    std::uint32_t index;
    double weight;
  };
  std::vector<Receiver> receivers;
  double weight_sum = 0.0;
  gas_mesh.for_each_in_radius(
      particles, x, y, z, radius, [&](std::uint32_t j, float d2) {
        if (!particles.is_gas(j)) return;  // stale mesh entries may be stars
        const double w = static_cast<double>(particles.mass[j]) *
                         (1.0 - std::sqrt(static_cast<double>(d2)) / radius +
                          1e-3);
        receivers.push_back(Receiver{j, w});
        weight_sum += w;
      });
  if (receivers.empty() || weight_sum <= 0.0) return;  // energy has nowhere to go
  for (const auto& r : receivers) {
    const double share = r.weight / weight_sum;
    particles.u[r.index] +=
        static_cast<float>(energy * share / particles.mass[r.index]);
    if (metals > 0.0) {
      particles.metal[r.index] +=
          static_cast<float>(metals * share / particles.mass[r.index]);
    }
  }
  stats.energy_injected += energy;
  stats.metals_produced += metals;
}

SubgridStats SubgridModel::apply(Particles& particles,
                                 const tree::ChainingMesh& gas_mesh,
                                 const cosmo::Background& bg, double a,
                                 std::span<const double> dt,
                                 const std::uint8_t* active,
                                 std::uint64_t step) {
  (void)bg;
  HACC_TRACE_SPAN("subgrid");
  SubgridStats stats;
  const std::size_t n = particles.size();
  CHECK(dt.size() == n);
  const CounterRng rng(config_.seed, step);
  const double a3 = a * a * a;

  // --- cooling + star formation over gas -------------------------------
  for (std::size_t i = 0; i < n; ++i) {
    if (!particles.is_gas(i)) continue;
    if (active && !active[i]) continue;

    // Radiative cooling (stable exponential update toward the UV floor).
    if (config_.cooling.enabled) {
      particles.u[i] = static_cast<float>(
          cooling_->cool(particles.u[i], particles.rho[i], particles.metal[i],
                        a, dt[i]));
    }

    // Star formation: density + overdensity + temperature gates, then
    // the stochastic Schmidt law.
    if (config_.star_formation.enabled) {
      const double n_h = n_h_of(particles, i, a);
      const double t_K =
          units::temperature_K(particles.u[i], units::kMuIonized);
      const bool overdense =
          config_.mean_gas_density <= 0.0 ||
          particles.rho[i] > config_.star_formation.min_overdensity *
                                 config_.mean_gas_density;
      if (overdense && n_h > config_.star_formation.n_h_threshold &&
          t_K < config_.star_formation.t_max_K) {
        const double t_dyn = dynamical_time(particles.rho[i] / a3);
        const double prob =
            1.0 -
            std::exp(-config_.star_formation.efficiency * dt[i] / t_dyn);
        // Counter-based draw keyed on particle id: ghost replicas on
        // other ranks reach the identical decision.
        if (rng.uniform(particles.id[i]) < prob) {
          particles.species[i] = static_cast<std::uint8_t>(Species::kStar);
          if (particles.is_owned(i)) {
            ++stats.stars_formed;
            stats.mass_in_stars += particles.mass[i];
          }
          if (config_.supernova.enabled) {
            // Prompt SN energy + metal return from the formed population.
            const double mass_msun = static_cast<double>(particles.mass[i]) *
                                     1e10 / config_.cooling.h;
            const double e_code = erg_to_code_energy(
                config_.supernova.e_sn_per_msun * mass_msun,
                config_.cooling.h);
            const double metal_mass =
                config_.supernova.metal_yield * particles.mass[i];
            if (particles.is_owned(i)) ++stats.sn_events;
            SubgridStats local;
            inject_thermal(particles, gas_mesh, particles.x[i],
                           particles.y[i], particles.z[i], e_code, metal_mass,
                           local);
            if (particles.is_owned(i)) stats += local;
          }
        }
      }
    }
  }

  // --- black holes -------------------------------------------------------
  if (config_.agn.enabled) {
    // Existing BH list (small).
    std::vector<std::size_t> black_holes;
    for (std::size_t i = 0; i < n; ++i) {
      if (particles.species[i] == static_cast<std::uint8_t>(Species::kBlackHole)) {
        black_holes.push_back(i);
      }
    }

    // Seeding: very dense gas (physical AND comoving-overdensity gates)
    // with no BH inside the exclusion radius.
    for (std::size_t i = 0; i < n; ++i) {
      if (!particles.is_gas(i)) continue;
      if (active && !active[i]) continue;
      if (n_h_of(particles, i, a) < config_.agn.seed_n_h) continue;
      if (config_.mean_gas_density > 0.0 &&
          particles.rho[i] < 10.0 * config_.star_formation.min_overdensity *
                                 config_.mean_gas_density) {
        continue;
      }
      bool excluded = false;
      const double r2_excl =
          config_.agn.seed_exclusion * config_.agn.seed_exclusion;
      for (std::size_t b : black_holes) {
        const double dx = static_cast<double>(particles.x[i]) - particles.x[b];
        const double dy = static_cast<double>(particles.y[i]) - particles.y[b];
        const double dz = static_cast<double>(particles.z[i]) - particles.z[b];
        if (dx * dx + dy * dy + dz * dz < r2_excl) {
          excluded = true;
          break;
        }
      }
      if (excluded) continue;
      particles.species[i] = static_cast<std::uint8_t>(Species::kBlackHole);
      black_holes.push_back(i);
      if (particles.is_owned(i)) ++stats.bh_seeded;
    }

    // Accretion + thermal feedback.
    const double c_kms = 2.998e5;
    for (std::size_t b : black_holes) {
      if (active && !active[b]) continue;
      // Local gas state from the injection neighborhood.
      const float radius = static_cast<float>(std::min(
          config_.injection_radius, 0.99 * gas_mesh.min_bin_width()));
      double rho_sum = 0.0, cs_sum = 0.0, mass_sum = 0.0;
      std::vector<std::uint32_t> neighbors;
      gas_mesh.for_each_in_radius(
          particles, particles.x[b], particles.y[b], particles.z[b], radius,
          [&](std::uint32_t j, float) {
            if (!particles.is_gas(j)) return;
            neighbors.push_back(j);
            rho_sum += particles.rho[j];
            const double g = units::kGamma;
            cs_sum += std::sqrt(std::max(
                1e-10, g * (g - 1.0) * static_cast<double>(particles.u[j])));
            mass_sum += particles.mass[j];
          });
      if (neighbors.empty()) continue;
      const double inv_nn = 1.0 / static_cast<double>(neighbors.size());
      const double rho_proper = rho_sum * inv_nn / a3;
      const double cs = std::max(1.0, cs_sum * inv_nn);
      const double m_bh = particles.mass[b];
      const double bondi = config_.agn.accretion_alpha * 4.0 *
                           std::numbers::pi * units::kGravity *
                           units::kGravity * m_bh * m_bh * rho_proper /
                           (cs * cs * cs);
      const double cap = config_.agn.max_fraction * m_bh /
                         std::max(1e-10, dynamical_time(rho_proper));
      const double mdot = std::min(bondi, cap);
      const double dm = std::min(mdot * dt[b], 0.5 * mass_sum);
      if (dm <= 0.0) continue;
      // Nibble the accreted mass from the neighbors (conserves mass).
      const double frac = dm / mass_sum;
      for (std::uint32_t j : neighbors) {
        particles.mass[j] *= static_cast<float>(1.0 - frac);
      }
      particles.mass[b] += static_cast<float>(dm);
      const double energy = config_.agn.eps_f_eps_r * dm * c_kms * c_kms;
      SubgridStats local;
      inject_thermal(particles, gas_mesh, particles.x[b], particles.y[b],
                     particles.z[b], energy, 0.0, local);
      if (particles.is_owned(b)) {
        ++stats.agn_events;
        stats += local;
      }
    }
  }
  return stats;
}

double SubgridModel::min_source_timescale(const Particles& particles,
                                          const cosmo::Background& bg,
                                          double a,
                                          const std::uint8_t* active) const {
  (void)bg;
  double t_min = std::numeric_limits<double>::infinity();
  const double a3 = a * a * a;
  const std::size_t n = particles.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (!particles.is_gas(i)) continue;
    if (active && !active[i]) continue;
    if (!config_.star_formation.enabled && !config_.agn.enabled) break;
    const double n_h = n_h_of(particles, i, a);
    const bool overdense =
        config_.mean_gas_density <= 0.0 ||
        particles.rho[i] > config_.star_formation.min_overdensity *
                               config_.mean_gas_density;
    if (overdense && n_h > config_.star_formation.n_h_threshold) {
      t_min = std::min(t_min, dynamical_time(particles.rho[i] / a3));
    }
  }
  return t_min;
}

}  // namespace crkhacc::subgrid
