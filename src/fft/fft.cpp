#include "fft/fft.h"

#include <atomic>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <numbers>
#include <shared_mutex>
#include <utility>

#include "util/assertions.h"

namespace crkhacc::fft {
namespace {

constexpr double kPi = std::numbers::pi;

/// Immutable radix-2 plan: per-stage twiddle tables for both directions.
/// The tables are generated with the SAME first-order recurrence
/// (w = 1; w *= wlen) the original uncached butterfly loop evaluated
/// per block, so a cached transform is bitwise identical to the
/// recurrence-per-block one — every block of a stage consumed the exact
/// same w sequence.
struct Pow2Plan {
  std::size_t n = 0;
  /// stages[s][k]: twiddle k of the stage with len = 2^(s+1).
  std::vector<std::vector<Complex>> forward;
  std::vector<std::vector<Complex>> inverse;

  explicit Pow2Plan(std::size_t length) : n(length) {
    for (std::size_t len = 2; len <= n; len <<= 1) {
      forward.push_back(stage_table(len, false));
      inverse.push_back(stage_table(len, true));
    }
  }

  static std::vector<Complex> stage_table(std::size_t len, bool inv) {
    const double angle = (inv ? 2.0 : -2.0) * kPi / static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    std::vector<Complex> table(len / 2);
    Complex w(1.0, 0.0);
    for (std::size_t k = 0; k < len / 2; ++k) {
      table[k] = w;
      w *= wlen;
    }
    return table;
  }
};

/// Iterative radix-2 Cooley-Tukey, bit-reversal permutation first;
/// twiddles come from the plan's per-stage tables.
void fft_pow2(Complex* a, std::size_t n, bool inverse, const Pow2Plan& plan) {
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  const auto& stages = inverse ? plan.inverse : plan.forward;
  std::size_t stage = 0;
  for (std::size_t len = 2; len <= n; len <<= 1, ++stage) {
    const std::vector<Complex>& tw = stages[stage];
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = a[i + k];
        const Complex v = a[i + k + len / 2] * tw[k];
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
      }
    }
  }
}

/// Immutable Bluestein plan for one (length, direction): the chirp, and
/// the convolution kernel b already forward-transformed to length m —
/// b depends only on (n, direction), so transforming it per call was
/// pure rework (and the cached spectrum is bitwise the value the per-call
/// transform produced).
struct BluesteinPlan {
  std::size_t n = 0;
  std::size_t m = 0;
  std::vector<Complex> chirp;
  std::vector<Complex> b_fft;
  std::shared_ptr<const Pow2Plan> conv;  ///< radix-2 plan of length m

  BluesteinPlan(std::size_t length, bool inverse,
                std::shared_ptr<const Pow2Plan> conv_plan)
      : n(length), m(next_pow2(2 * length - 1)), conv(std::move(conv_plan)) {
    const double sign = inverse ? 1.0 : -1.0;
    // Chirp: w[k] = exp(sign * i * pi * k^2 / n). Computed with k^2 mod 2n
    // to keep the trig argument small for large k.
    chirp.resize(n);
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t k2 = (k * k) % (2 * n);
      const double angle =
          sign * kPi * static_cast<double>(k2) / static_cast<double>(n);
      chirp[k] = Complex(std::cos(angle), std::sin(angle));
    }
    b_fft.assign(m, Complex(0.0, 0.0));
    b_fft[0] = std::conj(chirp[0]);
    for (std::size_t k = 1; k < n; ++k) {
      b_fft[k] = b_fft[m - k] = std::conj(chirp[k]);
    }
    fft_pow2(b_fft.data(), m, false, *conv);
  }
};

// --- process-wide plan cache ----------------------------------------------
// Plans are immutable once built and shared via shared_ptr, so readers
// only need the shared lock; pool workers transforming lines
// concurrently never serialize against each other on a warm cache.
std::shared_mutex g_plans_mutex;
std::map<std::size_t, std::shared_ptr<const Pow2Plan>>& pow2_plans() {
  static std::map<std::size_t, std::shared_ptr<const Pow2Plan>> plans;
  return plans;
}
std::map<std::pair<std::size_t, bool>, std::shared_ptr<const BluesteinPlan>>&
bluestein_plans() {
  static std::map<std::pair<std::size_t, bool>,
                  std::shared_ptr<const BluesteinPlan>>
      plans;
  return plans;
}
std::atomic<std::uint64_t> g_plan_hits{0};
std::atomic<std::uint64_t> g_plan_misses{0};

std::shared_ptr<const Pow2Plan> acquire_pow2(std::size_t n) {
  {
    std::shared_lock lock(g_plans_mutex);
    auto it = pow2_plans().find(n);
    if (it != pow2_plans().end()) {
      g_plan_hits.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  auto plan = std::make_shared<const Pow2Plan>(n);
  std::unique_lock lock(g_plans_mutex);
  auto [it, inserted] = pow2_plans().emplace(n, std::move(plan));
  (inserted ? g_plan_misses : g_plan_hits)
      .fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

std::shared_ptr<const BluesteinPlan> acquire_bluestein(std::size_t n,
                                                       bool inverse) {
  const auto key = std::make_pair(n, inverse);
  {
    std::shared_lock lock(g_plans_mutex);
    auto it = bluestein_plans().find(key);
    if (it != bluestein_plans().end()) {
      g_plan_hits.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  auto conv = acquire_pow2(next_pow2(2 * n - 1));
  auto plan = std::make_shared<const BluesteinPlan>(n, inverse, std::move(conv));
  std::unique_lock lock(g_plans_mutex);
  auto [it, inserted] = bluestein_plans().emplace(key, std::move(plan));
  (inserted ? g_plan_misses : g_plan_hits)
      .fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

/// Bluestein chirp-z transform for arbitrary n, via a power-of-two
/// cyclic convolution of length m >= 2n-1.
void fft_bluestein(Complex* data, std::size_t n, bool inverse) {
  const auto plan = acquire_bluestein(n, inverse);
  const std::size_t m = plan->m;
  std::vector<Complex> a(m, Complex(0.0, 0.0));
  for (std::size_t k = 0; k < n; ++k) a[k] = data[k] * plan->chirp[k];

  fft_pow2(a.data(), m, false, *plan->conv);
  for (std::size_t k = 0; k < m; ++k) a[k] *= plan->b_fft[k];
  fft_pow2(a.data(), m, true, *plan->conv);
  const double inv_m = 1.0 / static_cast<double>(m);
  for (std::size_t k = 0; k < n; ++k) {
    data[k] = a[k] * inv_m * plan->chirp[k];
  }
}

void transform_contiguous(Complex* data, std::size_t n, bool inverse) {
  if (n <= 1) return;
  if (is_pow2(n)) {
    const auto plan = acquire_pow2(n);
    fft_pow2(data, n, inverse, *plan);
  } else {
    fft_bluestein(data, n, inverse);
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (std::size_t k = 0; k < n; ++k) data[k] *= inv_n;
  }
}

}  // namespace

bool is_pow2(std::size_t n) { return n > 0 && (n & (n - 1)) == 0; }

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

PlanCacheStats plan_cache_stats() {
  PlanCacheStats stats;
  stats.hits = g_plan_hits.load(std::memory_order_relaxed);
  stats.misses = g_plan_misses.load(std::memory_order_relaxed);
  return stats;
}

void reset_plan_cache_stats() {
  g_plan_hits.store(0, std::memory_order_relaxed);
  g_plan_misses.store(0, std::memory_order_relaxed);
}

void transform(std::vector<Complex>& data, bool inverse) {
  transform_contiguous(data.data(), data.size(), inverse);
}

void transform_line(Complex* base, std::size_t n, std::size_t stride, bool inverse) {
  if (stride == 1) {
    transform_contiguous(base, n, inverse);
    return;
  }
  // Gather / transform / scatter. The distributed FFT always arranges
  // contiguous lines, so this path only serves local 3-D convenience
  // transforms where the copy cost is acceptable.
  std::vector<Complex> line(n);
  for (std::size_t i = 0; i < n; ++i) line[i] = base[i * stride];
  transform_contiguous(line.data(), n, inverse);
  for (std::size_t i = 0; i < n; ++i) base[i * stride] = line[i];
}

void transform_3d(std::vector<Complex>& data, std::size_t nx, std::size_t ny,
                  std::size_t nz, bool inverse) {
  CHECK(data.size() == nx * ny * nz);
  // x lines (contiguous).
  for (std::size_t z = 0; z < nz; ++z) {
    for (std::size_t y = 0; y < ny; ++y) {
      transform_line(&data[(z * ny + y) * nx], nx, 1, inverse);
    }
  }
  // y lines (stride nx).
  for (std::size_t z = 0; z < nz; ++z) {
    for (std::size_t x = 0; x < nx; ++x) {
      transform_line(&data[z * ny * nx + x], ny, nx, inverse);
    }
  }
  // z lines (stride nx*ny).
  for (std::size_t y = 0; y < ny; ++y) {
    for (std::size_t x = 0; x < nx; ++x) {
      transform_line(&data[y * nx + x], nz, nx * ny, inverse);
    }
  }
}

}  // namespace crkhacc::fft
