// Tests for the subgrid astrophysics: cooling table, star formation,
// SN/AGN feedback, and conservation properties.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/particles.h"
#include "cosmology/units.h"
#include "subgrid/cooling.h"
#include "subgrid/model.h"
#include "tree/chaining_mesh.h"

namespace crkhacc::subgrid {
namespace {

comm::Box3 cube(double size) {
  comm::Box3 box;
  box.lo = {0, 0, 0};
  box.hi = {size, size, size};
  return box;
}

// --- unit conversions ---------------------------------------------------------

TEST(UnitsCgs, DensityConversionMagnitude) {
  // 1 code density unit = h^2 * 1e10 Msun / Mpc^3 ~ 6.8e-31 h^2 g/cm^3.
  const double rho = rho_code_to_cgs(1.0, 1.0);
  EXPECT_NEAR(rho, 6.77e-31, 0.05e-31);
}

TEST(UnitsCgs, CosmicMeanGivesRealisticHydrogenDensity) {
  // Mean baryon density today: n_H ~ 1.9e-7 cm^-3.
  const double rho_b = 0.049 * units::kRhoCrit0;
  const double n_h = n_hydrogen_cgs(rho_b, 0.6766, 0.76);
  EXPECT_GT(n_h, 1e-7);
  EXPECT_LT(n_h, 4e-7);
}

TEST(UnitsCgs, ErgConversionRoundTrip) {
  // One code energy unit = 1e10 Msun/h * (km/s)^2 = 1.989e53/h erg.
  const double h = 0.7;
  EXPECT_NEAR(erg_to_code_energy(1.989e53 / h, h), 1.0, 1e-3);
}

// --- cooling table --------------------------------------------------------------

TEST(CoolingTable, ShapeOfLambda) {
  const CoolingTable table(CoolingConfig{});
  EXPECT_EQ(table.lambda(5000.0, 0.0), 0.0);            // neutral gas
  EXPECT_GT(table.lambda(3e4, 0.0), 0.0);               // line cooling on
  // Peak near 1e5 K exceeds the bremsstrahlung floor at 1e7 K.
  EXPECT_GT(table.lambda(1.2e5, 0.0), table.lambda(1e7, 0.0));
  // Bremsstrahlung grows again toward very high T.
  EXPECT_GT(table.lambda(1e9, 0.0), table.lambda(1e7, 0.0));
}

TEST(CoolingTable, CorruptTemperaturesAreSafe) {
  // SDC-flipped internal energies reach the table as enormous or NaN
  // temperatures; the lookup must saturate, not index out of bounds.
  const CoolingTable table(CoolingConfig{});
  const double extreme = table.lambda(8e20, 0.0);
  EXPECT_TRUE(std::isfinite(extreme));
  EXPECT_GT(extreme, 0.0);  // saturates at the top table bin
  EXPECT_EQ(table.lambda(std::numeric_limits<double>::quiet_NaN(), 0.0), 0.0);
  EXPECT_TRUE(std::isfinite(
      table.lambda(std::numeric_limits<double>::infinity(), 0.0)));
  EXPECT_EQ(table.lambda(-1e30, 0.0), 0.0);
}

TEST(CoolingTable, MetalsEnhanceCooling) {
  const CoolingTable table(CoolingConfig{});
  EXPECT_GT(table.lambda(2.5e5, 0.02), 2.0 * table.lambda(2.5e5, 0.0));
}

TEST(CoolingTable, CoolingTimeDecreasesWithDensity) {
  const CoolingTable table(CoolingConfig{});
  const double u = units::internal_energy(1e6, units::kMuIonized);
  const double t_low = table.cooling_time(1.0, u, 0.0, 1.0);
  const double t_high = table.cooling_time(100.0, u, 0.0, 1.0);
  EXPECT_GT(t_low, 0.0);
  // t_cool ~ 1/n: 100x density -> ~100x faster.
  EXPECT_NEAR(t_low / t_high, 100.0, 5.0);
}

TEST(CoolingTable, ColdGasNeverCools) {
  const CoolingTable table(CoolingConfig{});
  const double u = units::internal_energy(5000.0, units::kMuIonized);
  EXPECT_TRUE(std::isinf(table.cooling_time(100.0, u, 0.0, 1.0)));
}

TEST(CoolingTable, CoolApproachesFloorStably) {
  const CoolingTable table(CoolingConfig{});
  const double u_floor =
      units::internal_energy(table.floor_K(1.0), units::kMuIonized);
  const double u_hot = units::internal_energy(1e7, units::kMuIonized);
  // Gigantic dt with overdense gas: must land exactly on the floor, not
  // overshoot negative.
  const double u_cooled = table.cool(u_hot, 1e4, 0.02, 1.0, 1e6);
  EXPECT_GE(u_cooled, u_floor * 0.999);
  EXPECT_LE(u_cooled, u_hot);
  // Zero dt: unchanged.
  EXPECT_NEAR(table.cool(u_hot, 1e4, 0.0, 1.0, 0.0), u_hot, 1e-9 * u_hot);
}

TEST(CoolingTable, UvFloorWarmsColdGas) {
  const CoolingTable table(CoolingConfig{});
  const double u_floor =
      units::internal_energy(table.floor_K(1.0), units::kMuIonized);
  const double u_cold = 0.01 * u_floor;
  const double warmed = table.cool(u_cold, 10.0, 0.0, 1.0, 1e5);
  EXPECT_GT(warmed, u_cold);
  EXPECT_LE(warmed, u_floor * 1.001);
}

TEST(CoolingTable, FloorTracksReionization) {
  CoolingConfig config;
  config.z_reion = 8.0;
  const CoolingTable table(config);
  EXPECT_DOUBLE_EQ(table.floor_K(1.0), config.t_floor_K);          // z=0
  EXPECT_DOUBLE_EQ(table.floor_K(1.0 / 9.0), config.t_floor_K);    // z=8
  EXPECT_LT(table.floor_K(1.0 / 21.0), config.t_floor_K);          // z=20
}

TEST(CoolingTable, DisabledTableIsInert) {
  CoolingConfig config;
  config.enabled = false;
  const CoolingTable table(config);
  EXPECT_TRUE(std::isinf(table.cooling_time(100.0, 1000.0, 0.0, 1.0)));
  EXPECT_DOUBLE_EQ(table.cool(1000.0, 100.0, 0.0, 1.0, 1e5), 1000.0);
}

// --- model ---------------------------------------------------------------------

/// Dense cold blob of gas around the center, mesh built over it.
struct ModelSetup {
  Particles particles;
  tree::ChainingMesh mesh;

  explicit ModelSetup(double n_h_target, double t_K, std::size_t count = 64)
      : mesh(cube(4.0), {1.0, 16}) {
    // Convert target hydrogen density to a code rho (a=1, h=0.6766).
    const double rho =
        n_h_target / n_hydrogen_cgs(1.0, 0.6766, 0.76);
    for (std::size_t i = 0; i < count; ++i) {
      const float x = 1.5f + 0.25f * (i % 4);
      const float y = 1.5f + 0.25f * ((i / 4) % 4);
      const float z = 1.5f + 0.25f * ((i / 16) % 4);
      const std::size_t idx = particles.push_back(
          i, Species::kGas, x, y, z, 0, 0, 0, 0.1f);
      particles.rho[idx] = static_cast<float>(rho);
      particles.hsml[idx] = 0.3f;
      particles.u[idx] = static_cast<float>(
          units::internal_energy(t_K, units::kMuIonized));
    }
    std::vector<std::uint32_t> gas(count);
    for (std::size_t i = 0; i < count; ++i) gas[i] = static_cast<std::uint32_t>(i);
    mesh.build(particles, gas);
  }
};

SubgridConfig sf_only_config() {
  SubgridConfig config;
  config.cooling.enabled = false;
  config.agn.enabled = false;
  config.supernova.enabled = false;
  return config;
}

TEST(SubgridModel, DenseColdGasFormsStars) {
  ModelSetup setup(/*n_h=*/1.0, /*t_K=*/1e4);
  SubgridModel model(sf_only_config());
  std::vector<double> dt(setup.particles.size(), 1e3);  // many dynamical times
  const auto stats = model.apply(setup.particles, setup.mesh,
                                 cosmo::Background(cosmo::Parameters{}), 1.0,
                                 dt, nullptr, 0);
  EXPECT_GT(stats.stars_formed, 32);  // nearly all should convert
  EXPECT_GT(stats.mass_in_stars, 0.0);
}

TEST(SubgridModel, HotOrDiffuseGasDoesNotFormStars) {
  SubgridModel model(sf_only_config());
  const cosmo::Background bg{cosmo::Parameters{}};
  {
    ModelSetup hot(/*n_h=*/1.0, /*t_K=*/1e7);
    std::vector<double> dt(hot.particles.size(), 1e3);
    const auto stats = model.apply(hot.particles, hot.mesh, bg, 1.0, dt,
                                   nullptr, 0);
    EXPECT_EQ(stats.stars_formed, 0);
  }
  {
    ModelSetup diffuse(/*n_h=*/1e-4, /*t_K=*/1e4);
    std::vector<double> dt(diffuse.particles.size(), 1e3);
    const auto stats = model.apply(diffuse.particles, diffuse.mesh, bg, 1.0,
                                   dt, nullptr, 0);
    EXPECT_EQ(stats.stars_formed, 0);
  }
}

TEST(SubgridModel, StochasticDrawsAreDeterministic) {
  const cosmo::Background bg{cosmo::Parameters{}};
  auto run_once = [&] {
    ModelSetup setup(1.0, 1e4);
    SubgridModel model(sf_only_config());
    std::vector<double> dt(setup.particles.size(), 0.5);
    model.apply(setup.particles, setup.mesh, bg, 1.0, dt, nullptr, 7);
    std::vector<std::uint8_t> species(setup.particles.species);
    return species;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(SubgridModel, SupernovaInjectsEnergyAndMetals) {
  SubgridConfig config = sf_only_config();
  config.supernova.enabled = true;
  ModelSetup setup(1.0, 1e4, 128);
  SubgridModel model(config);
  const double u_before = setup.particles.u[0];
  std::vector<double> dt(setup.particles.size(), 1e3);
  const auto stats = model.apply(setup.particles, setup.mesh,
                                 cosmo::Background(cosmo::Parameters{}), 1.0,
                                 dt, nullptr, 0);
  ASSERT_GT(stats.sn_events, 0);
  EXPECT_GT(stats.energy_injected, 0.0);
  EXPECT_GT(stats.metals_produced, 0.0);
  // Some surviving gas got hotter and enriched.
  bool heated = false, enriched = false;
  for (std::size_t i = 0; i < setup.particles.size(); ++i) {
    if (!setup.particles.is_gas(i)) continue;
    if (setup.particles.u[i] > 2.0f * u_before) heated = true;
    if (setup.particles.metal[i] > 0.0f) enriched = true;
  }
  EXPECT_TRUE(heated);
  EXPECT_TRUE(enriched);
}

TEST(SubgridModel, MassConservedThroughStarFormationAndAgn) {
  SubgridConfig config;
  config.cooling.enabled = false;
  ModelSetup setup(20.0, 1e4, 128);  // dense enough to seed a BH
  SubgridModel model(config);
  double mass_before = 0.0;
  for (std::size_t i = 0; i < setup.particles.size(); ++i) {
    mass_before += setup.particles.mass[i];
  }
  std::vector<double> dt(setup.particles.size(), 10.0);
  for (std::uint64_t step = 0; step < 5; ++step) {
    model.apply(setup.particles, setup.mesh,
                cosmo::Background(cosmo::Parameters{}), 1.0, dt, nullptr, step);
  }
  double mass_after = 0.0;
  for (std::size_t i = 0; i < setup.particles.size(); ++i) {
    mass_after += setup.particles.mass[i];
  }
  EXPECT_NEAR(mass_after, mass_before, 1e-4 * mass_before);
}

TEST(SubgridModel, BlackHoleSeedingRespectsExclusion) {
  SubgridConfig config;
  config.cooling.enabled = false;
  config.star_formation.enabled = false;
  config.supernova.enabled = false;
  config.agn.seed_exclusion = 10.0;  // whole box: at most one BH
  ModelSetup setup(50.0, 1e4, 128);
  SubgridModel model(config);
  std::vector<double> dt(setup.particles.size(), 1.0);
  const auto stats = model.apply(setup.particles, setup.mesh,
                                 cosmo::Background(cosmo::Parameters{}), 1.0,
                                 dt, nullptr, 0);
  EXPECT_EQ(stats.bh_seeded, 1);
  int bh_count = 0;
  for (std::size_t i = 0; i < setup.particles.size(); ++i) {
    if (setup.particles.species[i] ==
        static_cast<std::uint8_t>(Species::kBlackHole)) {
      ++bh_count;
    }
  }
  EXPECT_EQ(bh_count, 1);
}

TEST(SubgridModel, AgnAccretesAndHeats) {
  SubgridConfig config;
  config.cooling.enabled = false;
  config.star_formation.enabled = false;
  config.supernova.enabled = false;
  ModelSetup setup(50.0, 1e4, 128);
  SubgridModel model(config);
  std::vector<double> dt(setup.particles.size(), 10.0);
  const cosmo::Background bg{cosmo::Parameters{}};
  // Step 0 seeds; later steps accrete.
  SubgridStats total;
  for (std::uint64_t step = 0; step < 4; ++step) {
    total += model.apply(setup.particles, setup.mesh, bg, 1.0, dt, nullptr,
                         step);
  }
  EXPECT_GE(total.bh_seeded, 1);
  EXPECT_GT(total.agn_events, 0);
  EXPECT_GT(total.energy_injected, 0.0);
  // The BH gained mass beyond its seed.
  float bh_mass = 0.0f;
  for (std::size_t i = 0; i < setup.particles.size(); ++i) {
    if (setup.particles.species[i] ==
        static_cast<std::uint8_t>(Species::kBlackHole)) {
      bh_mass = std::max(bh_mass, setup.particles.mass[i]);
    }
  }
  EXPECT_GT(bh_mass, 0.1f);
}

TEST(SubgridModel, OverdensityGateBlocksMeanDensityGas) {
  // The high-z guard: gas at the cosmic mean density must not form stars
  // even when the early universe's physical density exceeds the n_H
  // threshold — only overdense regions qualify.
  SubgridConfig config = sf_only_config();
  ModelSetup setup(/*n_h=*/1.0, /*t_K=*/1e4);
  // Declare the blob's density to BE the mean: overdensity == 1.
  config.mean_gas_density = setup.particles.rho[0];
  SubgridModel gated(config);
  std::vector<double> dt(setup.particles.size(), 1e3);
  const cosmo::Background bg{cosmo::Parameters{}};
  const auto blocked = gated.apply(setup.particles, setup.mesh, bg, 1.0, dt,
                                   nullptr, 0);
  EXPECT_EQ(blocked.stars_formed, 0);

  // Same gas, but declared 100x overdense: forms stars.
  config.mean_gas_density = setup.particles.rho[0] / 100.0;
  SubgridModel open_gate(config);
  const auto allowed = open_gate.apply(setup.particles, setup.mesh, bg, 1.0,
                                       dt, nullptr, 0);
  EXPECT_GT(allowed.stars_formed, 0);
}

TEST(SubgridModel, SourceTimescaleFlagsDenseGas) {
  const cosmo::Background bg{cosmo::Parameters{}};
  ModelSetup dense(1.0, 1e4);
  SubgridModel model(SubgridConfig{});
  const double t_dense =
      model.min_source_timescale(dense.particles, bg, 1.0, nullptr);
  EXPECT_TRUE(std::isfinite(t_dense));
  ModelSetup diffuse(1e-5, 1e4);
  const double t_diffuse =
      model.min_source_timescale(diffuse.particles, bg, 1.0, nullptr);
  EXPECT_TRUE(std::isinf(t_diffuse));
}

}  // namespace
}  // namespace crkhacc::subgrid
