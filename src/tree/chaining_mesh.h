// Chaining mesh + per-bin k-d trees with coarse, growable leaves.
//
// The GPU tree solver of the paper (Section IV-B1): the rank's overloaded
// domain is divided into fixed chaining-mesh (CM) bins at least one
// short-range cutoff wide, so all forces act within a bin and its 26
// neighbors. Each bin holds a small k-d tree subdividing its particles
// into base leaves of O(100) particles — much coarser than CPU trees.
// Only the leaves are kept; no internal hierarchy is stored. The
// partition is built ONCE per global PM step; as particles drift during
// sub-cycling, leaf bounding boxes are re-fit (they grow), avoiding
// repartitioning at the cost of extra neighbor overlap. refit_bounds() is
// a linear pass and is far cheaper than the force kernels it feeds.
//
// Builds accept an optional util::ThreadPool: binning and the per-bin k-d
// subdivisions are independent across bins, so bins are built into
// per-bin leaf lists concurrently and stitched in bin order on the
// calling thread — the resulting permutation/leaf arrays are identical
// for every thread count (bins never share permutation ranges).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "comm/decomposition.h"
#include "core/particles.h"
#include "util/thread_pool.h"

namespace crkhacc::tree {

struct Leaf {
  std::uint32_t begin = 0;  ///< range [begin, end) in the permutation array
  std::uint32_t end = 0;
  std::array<float, 3> lo{0.f, 0.f, 0.f};  ///< fitted AABB
  std::array<float, 3> hi{0.f, 0.f, 0.f};

  std::uint32_t size() const { return end - begin; }
};

struct ChainingMeshConfig {
  double bin_width = 1.0;       ///< minimum CM bin width (>= force cutoff)
  std::uint32_t leaf_size = 64; ///< max particles per base leaf
};

class ChainingMesh {
 public:
  /// Bins cover `domain` (the rank's overloaded box). Actual bin widths
  /// are >= config.bin_width (the domain is divided evenly).
  ChainingMesh(const comm::Box3& domain, const ChainingMeshConfig& config);

  /// Full build: bin particles, build per-bin k-d leaves, fit AABBs.
  /// Called once per PM step. With a pool, per-bin work runs on the
  /// worker threads (result independent of the thread count).
  void build(const Particles& particles, util::ThreadPool* pool = nullptr);

  /// Build over a subset of particle indices (e.g. gas only, matching
  /// the species-separated trees of the hydro solver). The permutation
  /// array then holds indices drawn from `subset`.
  void build(const Particles& particles, std::span<const std::uint32_t> subset,
             util::ThreadPool* pool = nullptr);

  /// Re-fit all leaf AABBs to current particle positions (called per
  /// sub-cycle; leaves keep their membership).
  void refit_bounds(const Particles& particles,
                    util::ThreadPool* pool = nullptr);

  std::size_t num_leaves() const { return leaves_.size(); }
  const Leaf& leaf(std::size_t l) const { return leaves_[l]; }

  /// Particle indices of leaf l, in permutation order.
  const std::uint32_t* leaf_particles(std::size_t l) const {
    return perm_.data() + leaves_[l].begin;
  }

  /// Permutation array: particle index at sorted slot s.
  const std::vector<std::uint32_t>& permutation() const { return perm_; }

  /// Leaves in the bin of leaf l and its 26 neighbor bins whose AABBs
  /// come within `radius` of leaf l's AABB (includes l itself).
  std::vector<std::uint32_t> neighbor_leaves(std::size_t l, double radius) const;

  /// All (i <= j) interacting leaf pairs within `radius`, for kernels that
  /// process symmetric pair lists.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> interaction_pairs(
      double radius) const;

  const std::array<int, 3>& dims() const { return dims_; }
  std::size_t num_bins() const { return bin_leaf_begin_.size() - 1; }

  /// CM bin that leaf l was built into (constant between builds).
  std::uint32_t leaf_bin(std::size_t l) const { return leaf_bin_[l]; }

  /// Particles assigned to bin b at build time (bins own contiguous
  /// leaf and permutation ranges). Feeds the load-balancer's
  /// pair-count census (core/load_balancer.h).
  std::uint64_t bin_particle_count(std::size_t b) const;

  /// Adoption mesh for migrated work packets (comm/work_packets.h): a
  /// degenerate single-bin mesh whose leaves are consecutive particle
  /// ranges of the packet's flat arrays (leaf l = [leaf_begin[l],
  /// leaf_begin[l+1])) with an identity permutation. Only the leaf
  /// ranges and the permutation are meaningful — the launch drivers
  /// (gpu/warp.h) read nothing else — so neighbor queries and AABBs of
  /// an adopted mesh must not be used.
  static ChainingMesh adopt(std::span<const std::uint32_t> leaf_begin);

  /// Smallest bin width (radius limit for for_each_in_radius).
  double min_bin_width() const {
    return *std::min_element(width_.begin(), width_.end());
  }

  /// Total particles assigned at build time.
  std::size_t num_particles() const { return perm_.size(); }

  /// AABB-to-AABB minimum squared distance (public for tests).
  static double aabb_distance_sq(const Leaf& a, const Leaf& b);

  /// Visit every indexed particle within `radius` of (x, y, z):
  /// visit(particle_index, distance_sq). Point queries are served from the
  /// bin of the position and its 26 neighbors, so radius must not exceed
  /// the bin width (checked). Used by feedback injection and tests.
  template <typename Visitor>
  void for_each_in_radius(const Particles& particles, float x, float y,
                          float z, float radius, Visitor&& visit) const {
    HACC_ASSERT(radius <= *std::min_element(width_.begin(), width_.end()));
    const float r2 = radius * radius;
    const std::size_t bin = bin_of_position(x, y, z);
    const int bx = static_cast<int>(bin % static_cast<std::size_t>(dims_[0]));
    const int by = static_cast<int>((bin / dims_[0]) % static_cast<std::size_t>(dims_[1]));
    const int bz = static_cast<int>(bin / (static_cast<std::size_t>(dims_[0]) * dims_[1]));
    for (int dz = -1; dz <= 1; ++dz) {
      const int cz = bz + dz;
      if (cz < 0 || cz >= dims_[2]) continue;
      for (int dy = -1; dy <= 1; ++dy) {
        const int cy = by + dy;
        if (cy < 0 || cy >= dims_[1]) continue;
        for (int dx = -1; dx <= 1; ++dx) {
          const int cx = bx + dx;
          if (cx < 0 || cx >= dims_[0]) continue;
          const std::size_t nb =
              (static_cast<std::size_t>(cz) * dims_[1] + cy) * dims_[0] + cx;
          for (std::uint32_t l = bin_leaf_begin_[nb]; l < bin_leaf_begin_[nb + 1];
               ++l) {
            const Leaf& leaf = leaves_[l];
            // Quick AABB-point rejection.
            float gap2 = 0.f;
            const float q[3] = {x, y, z};
            for (int d = 0; d < 3; ++d) {
              const float g =
                  std::max({0.f, leaf.lo[d] - q[d], q[d] - leaf.hi[d]});
              gap2 += g * g;
            }
            if (gap2 > r2) continue;
            for (std::uint32_t s = leaf.begin; s < leaf.end; ++s) {
              const std::uint32_t i = perm_[s];
              const float ddx = particles.x[i] - x;
              const float ddy = particles.y[i] - y;
              const float ddz = particles.z[i] - z;
              const float d2 = ddx * ddx + ddy * ddy + ddz * ddz;
              if (d2 <= r2) visit(i, d2);
            }
          }
        }
      }
    }
  }

  /// Test hook: expose the hardened position->bin mapping.
  std::size_t bin_of_position_for_test(float x, float y, float z) const {
    return bin_of_position(x, y, z);
  }

 private:
  std::size_t bin_of_position(float x, float y, float z) const;
  void split_leaf(const Particles& particles, std::uint32_t begin,
                  std::uint32_t end, std::vector<Leaf>& out);
  void fit_leaf(const Particles& particles, Leaf& leaf) const;

  comm::Box3 domain_;
  ChainingMeshConfig config_;
  std::array<int, 3> dims_{1, 1, 1};
  std::array<double, 3> width_{1.0, 1.0, 1.0};

  std::vector<std::uint32_t> perm_;
  std::vector<Leaf> leaves_;
  /// leaves of bin b are [bin_leaf_begin_[b], bin_leaf_begin_[b+1]).
  std::vector<std::uint32_t> bin_leaf_begin_;
  /// bin index of each leaf.
  std::vector<std::uint32_t> leaf_bin_;
};

/// Occupancy census over the chaining-mesh grid of `domain` — an SDC
/// sanity check (core/sdc.h): a flipped position bit either leaves the
/// domain entirely (out_of_domain) or, en masse, piles particles into
/// one bin (max_bin >> mean_bin). Owned particles only; a particle
/// whose position is non-finite or farther than `slack` outside the
/// domain counts as out_of_domain.
struct OccupancyStats {
  std::uint64_t counted = 0;        ///< owned particles inside the domain
  std::uint64_t out_of_domain = 0;  ///< owned, non-finite or escaped
  std::uint64_t max_bin = 0;        ///< fullest bin
  double mean_bin = 0.0;            ///< counted / bins
  std::uint64_t bins = 0;
};

/// Census of owned particles over a uniform grid covering `domain`.
/// `period` > 0 is the global box size: a coordinate outside the slack
/// band is re-tried at ±period (a particle that drifted across the
/// periodic edge since the last exchange is still legitimately owned)
/// before being counted as out_of_domain.
OccupancyStats bin_occupancy(const comm::Box3& domain, double bin_width,
                             const Particles& particles, double slack,
                             double period = 0.0);

}  // namespace crkhacc::tree
