// Spherical-overdensity (SO) halo masses.
//
// Survey-facing halo catalogs report M_Delta / R_Delta — the mass inside
// the radius where the enclosed mean density falls to Delta times a
// reference density (200x mean matter is the default "M200m" convention).
// The paper's in situ pipeline produces exactly such survey measurements
// for its ~570,000 clusters. Centers come from FOF; the enclosed-mass
// profile is accumulated from BVH range queries, so the cost matches the
// rest of the on-device analysis stack.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "analysis/halos.h"
#include "core/particles.h"

namespace crkhacc::analysis {

struct SoHalo {
  std::uint64_t tag = 0;           ///< FOF tag of the seed halo
  std::array<double, 3> center{};  ///< input center
  double m_delta = 0.0;            ///< enclosed mass at R_Delta
  double r_delta = 0.0;            ///< SO radius
  std::size_t count = 0;           ///< particles within R_Delta
  bool converged = false;          ///< profile crossed Delta inside r_max
};

struct SoConfig {
  double delta = 200.0;        ///< overdensity threshold
  double reference_density = 0.0;  ///< rho_ref (e.g. mean matter, comoving)
  double r_max = 2.0;          ///< maximum search radius (code length)
  std::size_t min_particles = 8;
};

/// Compute SO masses around the given centers (typically FOF halo
/// centers) over the local particle cloud. Centers whose enclosed
/// density never reaches Delta * rho_ref report converged = false.
std::vector<SoHalo> so_masses(const Particles& particles,
                              const std::vector<Halo>& seeds,
                              const SoConfig& config);

}  // namespace crkhacc::analysis
