file(REMOVE_RECURSE
  "CMakeFiles/fig6_utilization.dir/fig6_utilization.cpp.o"
  "CMakeFiles/fig6_utilization.dir/fig6_utilization.cpp.o.d"
  "fig6_utilization"
  "fig6_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
