file(REMOVE_RECURSE
  "CMakeFiles/crkhacc_core.dir/diagnostics.cpp.o"
  "CMakeFiles/crkhacc_core.dir/diagnostics.cpp.o.d"
  "CMakeFiles/crkhacc_core.dir/exchange.cpp.o"
  "CMakeFiles/crkhacc_core.dir/exchange.cpp.o.d"
  "CMakeFiles/crkhacc_core.dir/param_file.cpp.o"
  "CMakeFiles/crkhacc_core.dir/param_file.cpp.o.d"
  "CMakeFiles/crkhacc_core.dir/simulation.cpp.o"
  "CMakeFiles/crkhacc_core.dir/simulation.cpp.o.d"
  "libcrkhacc_core.a"
  "libcrkhacc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crkhacc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
