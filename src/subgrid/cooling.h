// Radiative + metal-line cooling with a UV-background temperature floor.
//
// CRK-HACC tabulates cooling/heating rates; we do the same, building the
// table at construction from analytic fits: collisional H/He line cooling
// peaking near 1e5 K, free-free (bremsstrahlung) growing as sqrt(T) at
// high temperature, and a metallicity-scaled metal-line bump. The table
// is log-interpolated at runtime like any tabulated-rate code.
//
// The cooling update is operator-split and uses a stable exponential
// form, so arbitrarily short cooling times cannot overshoot the floor.
#pragma once

#include <vector>

namespace crkhacc::subgrid {

/// rho (code units, proper) -> g/cm^3.
double rho_code_to_cgs(double rho_code, double h);

/// Proper hydrogen number density [1/cm^3] from proper code density.
double n_hydrogen_cgs(double rho_proper_code, double h, double x_hydrogen);

/// erg -> code energy (1e10 Msun/h * (km/s)^2).
double erg_to_code_energy(double erg, double h);

struct CoolingConfig {
  double h = 0.6766;           ///< Hubble parameter (unit conversions)
  double x_hydrogen = 0.76;    ///< hydrogen mass fraction
  double t_floor_K = 1.0e4;    ///< UV-background temperature floor (z < z_reion)
  double z_reion = 8.0;        ///< reionization redshift
  bool enabled = true;
};

class CoolingTable {
 public:
  explicit CoolingTable(const CoolingConfig& config);

  /// Net cooling function Lambda(T, Z) in erg cm^3 / s (>= 0; the UV
  /// floor handles heating).
  double lambda(double temperature_K, double metallicity) const;

  /// Cooling time in code time units for gas with comoving density
  /// `rho_com` (code units), specific energy `u` (code units), metal
  /// fraction Z at scale factor a. Returns +inf above any cooling.
  double cooling_time(double rho_com, double u, double metallicity,
                      double a) const;

  /// Apply one cooling step of dt (code time) to specific energy u;
  /// returns the new u (never below the floor at this redshift).
  double cool(double u, double rho_com, double metallicity, double a,
              double dt) const;

  /// Temperature floor (K) at scale factor a.
  double floor_K(double a) const;

  const CoolingConfig& config() const { return config_; }

 private:
  double lambda_primordial(double t) const;

  CoolingConfig config_;
  // log10(T) from 3.0 to 9.0.
  static constexpr int kBins = 240;
  static constexpr double kLogTMin = 3.0;
  static constexpr double kLogTMax = 9.0;
  std::vector<double> primordial_;  ///< Lambda_H,He(T)
  std::vector<double> metal_;       ///< Lambda_metal(T) at solar Z
};

}  // namespace crkhacc::subgrid
