# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_comm[1]_include.cmake")
include("/root/repo/build/tests/test_fft[1]_include.cmake")
include("/root/repo/build/tests/test_cosmology[1]_include.cmake")
include("/root/repo/build/tests/test_mesh[1]_include.cmake")
include("/root/repo/build/tests/test_tree[1]_include.cmake")
include("/root/repo/build/tests/test_gpu[1]_include.cmake")
include("/root/repo/build/tests/test_sph[1]_include.cmake")
include("/root/repo/build/tests/test_gravity[1]_include.cmake")
include("/root/repo/build/tests/test_subgrid[1]_include.cmake")
include("/root/repo/build/tests/test_integrator[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_exchange[1]_include.cmake")
include("/root/repo/build/tests/test_simulation[1]_include.cmake")
include("/root/repo/build/tests/test_property_sweeps[1]_include.cmake")
