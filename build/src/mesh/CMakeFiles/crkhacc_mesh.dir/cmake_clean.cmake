file(REMOVE_RECURSE
  "CMakeFiles/crkhacc_mesh.dir/force_split.cpp.o"
  "CMakeFiles/crkhacc_mesh.dir/force_split.cpp.o.d"
  "CMakeFiles/crkhacc_mesh.dir/pm_solver.cpp.o"
  "CMakeFiles/crkhacc_mesh.dir/pm_solver.cpp.o.d"
  "libcrkhacc_mesh.a"
  "libcrkhacc_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crkhacc_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
