// Quickstart: a small cosmological hydrodynamics run, end to end.
//
// Generates Zel'dovich initial conditions for a 24 Mpc/h box with gas +
// dark matter, evolves it with the full CRK-HACC-style pipeline (PM
// gravity + CRKSPH + cooling/star formation/feedback, adaptive
// sub-cycling), and prints the in situ analysis: halos found, power
// spectrum, and an ASCII density slice.
//
//   ./examples/quickstart [num_ranks] [param_file]
//
// An optional parameter file overrides the defaults, e.g.:
//   np = 16
//   box = 32.0
//   sph_kernel = wendland
#include <cstdio>
#include <cstdlib>

#include "comm/world.h"
#include "core/param_file.h"
#include "core/simulation.h"

using namespace crkhacc;

int main(int argc, char** argv) {
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 2;

  core::SimConfig config;
  config.np = 12;            // 12^3 dm + 12^3 gas particles
  config.box = 24.0;         // Mpc/h
  config.ng = 24;            // PM mesh
  config.rs_cells = 1.0;     // compact handover, demo-friendly
  config.z_init = 30.0;
  config.z_final = 1.0;
  config.num_pm_steps = 12;
  config.bins.max_depth = 4;
  config.hydro = true;
  config.subgrid_on = true;
  config.seed = 2024;
  // Demo-resolution subgrid thresholds (coarse particle masses never
  // reach the production 0.13 cm^-3 star-formation density).
  config.subgrid.star_formation.n_h_threshold = 1e-5;
  config.subgrid.star_formation.min_overdensity = 3.0;
  config.subgrid.star_formation.t_max_K = 1e7;
  config.subgrid.star_formation.efficiency = 0.5;
  config.subgrid.agn.seed_n_h = 5e-5;
  config.subgrid.agn.seed_exclusion = 2.0;

  if (argc > 2) {
    const auto params = core::ParamFile::load(argv[2]);
    if (!params) {
      std::fprintf(stderr, "cannot read parameter file %s\n", argv[2]);
      return 1;
    }
    const auto unknown = params->apply(config);
    for (const auto& key : unknown) {
      std::fprintf(stderr, "warning: unknown parameter '%s'\n", key.c_str());
    }
  }

  std::printf("CRK-HACC mini quickstart: %zu^3 particle pairs, %.0f Mpc/h box, "
              "%d ranks\n\n",
              config.np, config.box, ranks);

  comm::World world(ranks);
  world.run([&](comm::Communicator& comm) {
    core::SimContext ctx(config.threads);
    core::Simulation sim(ctx, comm, config);
    sim.initialize();
    const auto result = sim.run();

    if (comm.rank() == 0) {
      std::printf("steps completed: %llu  (final z = %.2f)\n",
                  static_cast<unsigned long long>(result.steps_done),
                  1.0 / sim.scale_factor() - 1.0);
      std::printf("\nper-step adaptive integration:\n");
      std::printf("  %-6s %-8s %-10s %-12s\n", "step", "depth", "substeps",
                  "updates");
      for (const auto& report : result.reports) {
        std::printf("  %-6llu %-8d %-10llu %-12llu\n",
                    static_cast<unsigned long long>(report.step), report.depth,
                    static_cast<unsigned long long>(report.substeps),
                    static_cast<unsigned long long>(report.active_updates));
      }
    }
    comm.barrier();

    const auto analysis = sim.run_analysis();
    if (comm.rank() == 0) {
      std::printf("\nin situ analysis at z = %.2f:\n", 1.0 / analysis.a - 1.0);
      std::printf("  FOF halos (>= 8 particles): %lld\n",
                  static_cast<long long>(analysis.halo_count));
      std::printf("  largest halo mass: %.3e x 1e10 Msun/h\n",
                  analysis.largest_halo_mass);
      std::printf("  stars formed: %lld, black holes: %lld, galaxies: %lld\n",
                  static_cast<long long>(analysis.star_count),
                  static_cast<long long>(analysis.bh_count),
                  static_cast<long long>(analysis.galaxy_count));
      for (const auto& so : analysis.so_halos) {
        if (!so.converged) continue;
        std::printf("  M200m of halo %llu: %.3e x 1e10 Msun/h inside "
                    "R200m = %.2f Mpc/h\n",
                    static_cast<unsigned long long>(so.tag), so.m_delta,
                    so.r_delta);
        break;  // largest only
      }
      std::printf("\n  P(k) [first shells]:\n");
      for (std::size_t s = 0; s < analysis.power.k.size() && s < 6; ++s) {
        std::printf("    k = %.3f h/Mpc   P = %.2f (Mpc/h)^3  (%llu modes)\n",
                    analysis.power.k[s], analysis.power.power[s],
                    static_cast<unsigned long long>(analysis.power.modes[s]));
      }
      std::printf("\n  density slice (z-slab, log overdensity):\n%s\n",
                  analysis::render_density_ascii(analysis.slice, 48).c_str());
      std::printf("  slice clumping <rho^2>/<rho>^2 = %.2f, median gas T = %.1f K\n",
                  analysis.slice.clumping, analysis.slice.t_median_K);

      std::printf("\ntimer breakdown (rank 0):\n");
      for (const auto& [name, seconds] : sim.timers().sorted()) {
        std::printf("  %-12s %8.3f s  (%5.1f%%)\n", name.c_str(), seconds,
                    100.0 * sim.timers().fraction(name));
      }
    }
  });
  return 0;
}
