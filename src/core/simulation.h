// The CRK-HACC simulation driver.
//
// One Simulation object runs per rank (inside World::run). Each PM step
// follows the paper's architecture end to end:
//
//   exchange/overload -> tree build (once) -> long-range spectral solve +
//   PM kick -> adaptive sub-cycled short-range solve (gravity complement,
//   CRKSPH hydro, subgrid sources; leaf AABBs refit, only active bins
//   updated) -> in situ analysis -> multi-tier checkpoint I/O.
//
// Wall-clock is accounted into the paper's Fig. 5 timer taxonomy
// (long_range / tree_build / short_range / analysis / io / misc), and all
// kernel FLOPs into a FlopRegistry for the Fig. 6 utilization analysis.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "analysis/galaxies.h"
#include "analysis/halos.h"
#include "analysis/power_spectrum.h"
#include "analysis/slices.h"
#include "analysis/so_masses.h"
#include "comm/decomposition.h"
#include "comm/world.h"
#include "core/config.h"
#include "core/context.h"
#include "core/diagnostics.h"
#include "core/exchange.h"
#include "core/load_balancer.h"
#include "core/metrics.h"
#include "core/particles.h"
#include "core/sdc.h"
#include "cosmology/background.h"
#include "cosmology/power.h"
#include "gpu/device.h"
#include "integrator/kdk.h"
#include "io/checkpoint.h"
#include "io/multi_tier.h"
#include "mesh/pm_solver.h"
#include "sph/solver.h"
#include "subgrid/model.h"
#include "tree/chaining_mesh.h"
#include "util/snapshot.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "util/trace.h"

namespace crkhacc::core {

/// Cross-rank load-balance statistics for one traced step phase: the
/// paper's Fig. 6 imbalance view. mean is the rank-average wall time of
/// the phase, max the slowest rank (the critical path); max/mean > 1
/// quantifies imbalance.
struct PhaseStat {
  std::string name;
  double mean_seconds = 0.0;
  double max_seconds = 0.0;
  double imbalance() const {
    return mean_seconds > 0.0 ? max_seconds / mean_seconds : 1.0;
  }
};

/// Per-PM-step accounting returned by step().
struct StepReport {
  std::uint64_t step = 0;
  double a0 = 0.0, a1 = 0.0;
  int depth = 0;                     ///< deepest occupied timestep bin
  std::uint64_t substeps = 0;        ///< fine substeps executed (2^depth)
  std::uint64_t active_updates = 0;  ///< particle force-updates performed
  ExchangeStats exchange;
  subgrid::SubgridStats subgrid;
  double seconds = 0.0;              ///< wall time of this step
  double io_blocked_seconds = 0.0;   ///< sync I/O time (local-tier writes)
  /// SDC guardrail accounting (zeroed when config.sdc.enabled is false).
  SdcStepStats sdc;
  /// Dynamic load balancing (zeroed when lb_threshold is off). The
  /// imbalance ratios are the effective-cost max/mean the decision
  /// collective saw before and (predicted) after migration; packets is
  /// the number of work packets this rank shipped out as a donor.
  std::uint64_t lb_packets_migrated = 0;
  double lb_imbalance_before = 0.0;
  double lb_imbalance_after = 0.0;
  /// Per-phase cross-rank times for this step (allreduced; empty unless
  /// config.trace.enabled — the collectives only run when tracing is on,
  /// keeping traced-off runs bitwise identical to untraced ones).
  std::vector<PhaseStat> phases;
};

/// In situ analysis outputs for one analysis step.
struct AnalysisResult {
  double a = 0.0;
  std::int64_t halo_count = 0;        ///< global (allreduced)
  double largest_halo_mass = 0.0;     ///< global max
  std::vector<analysis::Halo> local_halos;
  analysis::PowerSpectrumResult power;
  analysis::SliceResult slice;
  std::int64_t star_count = 0;        ///< global
  std::int64_t bh_count = 0;          ///< global
  /// Volume-weighted gas clumping <rho^2>_V / <rho>_V^2 from the SPH
  /// densities (resolution-robust, unlike gridded slice clumping).
  double gas_clumping = 1.0;
  /// Spherical-overdensity (M200m) masses of the most massive local
  /// FOF halos (survey-facing catalog entries).
  std::vector<analysis::SoHalo> so_halos;
  /// Galaxies: DBSCAN clusters of the stellar component.
  std::vector<analysis::Galaxy> galaxies;
  std::int64_t galaxy_count = 0;  ///< global (allreduced)
};

struct RunResult {
  bool completed = false;
  std::uint64_t steps_done = 0;
  std::uint64_t interruptions = 0;
  /// Checkpoint restores attempted across all interruptions (each step
  /// probed counts once).
  std::uint64_t recovery_attempts = 0;
  /// Times the newest candidate checkpoint failed integrity validation
  /// and recovery fell back to an older step.
  std::uint64_t checkpoint_fallbacks = 0;
  /// Times no usable checkpoint survived and the run restarted from ICs.
  std::uint64_t restarts_from_ics = 0;
  /// Shrink-and-continue accounting. rank_losses / shrink_recoveries are
  /// campaign-level (stamped by core::Campaign: dead ranks observed and
  /// shrunken relaunches performed); adopted_rank_files counts checkpoint
  /// rank files restored by a rank other than their writer during
  /// round-robin adoption, summed across ranks.
  std::uint64_t rank_losses = 0;
  std::uint64_t shrink_recoveries = 0;
  std::uint64_t adopted_rank_files = 0;
  /// Pre-restore audit accounting (config.ckpt.audit_on_restore):
  /// audit passes run, damaged chunks found, and chunks healed from the
  /// redundant tier, summed across ranks.
  std::uint64_t ckpt_audit_runs = 0;
  std::uint64_t ckpt_audit_damaged_chunks = 0;
  std::uint64_t ckpt_audit_repaired_chunks = 0;
  /// Writer-side fault accounting (retries, verify failures, degraded
  /// mode), captured at the end of the run.
  io::IoStats io;
  // SDC guardrail totals across the run (see core/sdc.h).
  std::uint64_t sdc_audits = 0;
  std::uint64_t sdc_detections = 0;
  std::uint64_t sdc_rollbacks = 0;
  std::uint64_t sdc_replays = 0;
  /// Replay budgets exhausted -> checkpoint restore via recover().
  std::uint64_t sdc_escalations = 0;
  std::uint64_t sdc_injected_flips = 0;
  /// Dynamic load-balancing totals: packets this rank shipped as a
  /// donor, the summed per-step imbalance ratios over the lb_steps
  /// steps the decision collective ran (divide by lb_steps for the
  /// run-average before/after ratios).
  std::uint64_t lb_packets_migrated = 0;
  std::uint64_t lb_steps = 0;
  double lb_imbalance_before = 0.0;
  double lb_imbalance_after = 0.0;
  std::vector<StepReport> reports;
  std::vector<AnalysisResult> analyses;
  /// Per-phase imbalance accumulated over the run (tracing on only):
  /// mean_seconds sums the rank-average time, max_seconds sums each
  /// step's slowest rank — the phase's critical-path time.
  std::vector<PhaseStat> phase_stats;
  /// Local trace accounting at the end of the run (tracing on only).
  std::uint64_t trace_events = 0;
  std::uint64_t trace_dropped = 0;
  /// Intra-node scheduler accounting (per-thread busy time, steal counts)
  /// accumulated over the whole run.
  util::ThreadPoolStats threading;
  /// Pair-kernel launch policy the run actually used ("leaf_owner",
  /// "deferred_store" or "simd") and, for kSimd, the compiled-in
  /// instruction set ("avx2" / "scalar"; "none" on SIMD-less builds).
  std::string launch_schedule;
  std::string simd_isa;

  /// Fold `other` into this result — the one merge used everywhere a
  /// RunResult aggregates (pre-recovery counters folded into the main
  /// run, per-job results folded into a ScenarioService aggregate,
  /// campaign epochs). Per-field policy:
  ///   * counters (steps_done, interruptions, recovery/audit/adoption,
  ///     rank-loss, sdc_*, lb_* — the ratio sums included, their shared
  ///     denominator lb_steps sums alongside — trace_*) — SUM;
  ///   * io — fields sum; degraded_to_direct ORs; longest_chain takes
  ///     the max;
  ///   * reports / analyses — APPEND in merge order;
  ///   * phase_stats — merged by phase name (mean/max both sum: they
  ///     are per-step accumulations, so summing extends the run);
  ///   * threading — counters sum, per-worker busy_seconds sum
  ///     elementwise (resized to the wider pool), threads takes the max;
  ///   * launch_schedule / simd_isa — keep-newest: `other`'s value wins
  ///     when non-empty;
  ///   * completed — KEPT as-is; completion of a merged aggregate is a
  ///     caller-level judgment (e.g. "all jobs completed"), not a sum.
  void merge(const RunResult& other);
};

class Simulation {
 public:
  /// Borrow a shared immutable context: the context's thread pool runs
  /// this simulation's parallel regions (its width wins over
  /// config.threads — results are bitwise thread-count invariant), and
  /// cooling tables / primed initial states come from the context's
  /// caches. `ctx` must outlive the simulation and follow the sharing
  /// contract in core/context.h (one context per rank thread).
  Simulation(SimContext& ctx, comm::Communicator& comm,
             const SimConfig& config);

  /// Legacy entry point: builds a PRIVATE context (own pool sized from
  /// config.threads, no asset sharing) — exactly the pre-context
  /// semantics. Kept one release for downstream callers; in-repo code
  /// constructs a SimContext explicitly.
  [[deprecated(
      "construct a core::SimContext and use Simulation(ctx, comm, "
      "config)")]]
  Simulation(comm::Communicator& comm, const SimConfig& config);

  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Generate initial conditions and prime the solver state (density /
  /// smoothing lengths / initial force evaluation for bin assignment).
  /// With a shared context, a primed state cached under this config's
  /// key (see SimContext::initial_state_key) is adopted instead —
  /// bitwise the state this method would have produced, because the key
  /// covers every input of this path and the cached copy was produced by
  /// a genuine initialize() of the same key.
  void initialize();

  /// Resume from restored particle state at PM step `step`.
  void initialize_from(Particles&& particles, std::uint64_t step);

  /// Execute one PM step. Optional writer checkpoints the step; optional
  /// fault injector may "interrupt the machine" (reported in the result
  /// of run(); step() itself returns normally).
  ///
  /// With config.sdc.enabled, the step runs under the guardrail loop:
  /// snapshot at the boundary, audit after the step (collective), roll
  /// back + replay on a failed audit, and — after the replay budget —
  /// return with report.sdc.escalated set and the checkpoint withheld
  /// (only audited state is ever checkpointed); run() then escalates to
  /// recover().
  StepReport step(io::MultiTierWriter* writer = nullptr);

  /// Arm (or disarm, with nullptr) the memory-fault drill. Not owned,
  /// but the lifetime is now enforced, not just commented: arming
  /// registers this simulation on the injector's armed-reference count,
  /// disarming (or this simulation's destruction) releases it, and
  /// destroying an injector that is still armed anywhere aborts with a
  /// CHECK — a service tearing jobs down in any order cannot silently
  /// leave a dangling drill source on another job's hot path. Flips are
  /// drawn per injection point from a monotonically increasing
  /// opportunity counter, so a schedule never repeats inside a rollback
  /// replay.
  void set_memory_fault_injector(const MemFaultInjector* injector);

  /// Full campaign with checkpoint/restart-driven fault tolerance: on an
  /// injected fault the run restarts from the newest complete checkpoint
  /// (requires writer + pfs). Without a writer, faults are fatal.
  /// Equivalent to run_slice() until done plus finalize_run().
  RunResult run(io::MultiTierWriter* writer = nullptr,
                io::ThrottledStore* pfs = nullptr,
                const io::FaultInjector* fault = nullptr);

  /// Execute at most `max_steps` iterations of the campaign loop (each
  /// committed PM step, injected interruption, or SDC escalation counts
  /// one), accumulating counters/reports into `result`. Returns true
  /// once the run has reached num_pm_steps. Slicing is stateless: the
  /// loop executes the identical step sequence however the run is cut,
  /// so any partition into slices is bitwise identical to a monolithic
  /// run() — the property that lets core::ScenarioService interleave N
  /// scenarios through one pool. Call finalize_run() after the last
  /// slice (run() does both).
  bool run_slice(std::uint64_t max_steps, RunResult& result,
                 io::MultiTierWriter* writer = nullptr,
                 io::ThrottledStore* pfs = nullptr,
                 const io::FaultInjector* fault = nullptr);

  /// Stamp end-of-run facts into `result`: completed (did the loop reach
  /// num_pm_steps), writer I/O stats, per-run threading delta (shared
  /// pools accumulate across simulations; the delta is since this
  /// simulation's construction), launch schedule/ISA, trace counters.
  void finalize_run(RunResult& result, io::MultiTierWriter* writer = nullptr);

  /// Collective recovery (all ranks must call together): restore the
  /// newest checkpoint that every rank can validate end to end, falling
  /// back to older steps when the newest is corrupt or partial, and
  /// regenerating initial conditions if nothing usable survived.
  /// Recovery attempts / fallbacks / IC restarts accumulate into
  /// `result`. Called by run() on every interruption; public so restart
  /// tooling and tests can drive the same state machine directly.
  ///
  /// With config.ckpt.audit_on_restore, each rank first audits its own
  /// checkpoint files on the PFS and repairs damaged chunks from the
  /// writer's node-local tier (when `writer` is given and
  /// config.ckpt.redundant_local kept copies) — so a bit-flipped chunk
  /// heals in place instead of forcing a fallback to an older step.
  void recover(io::ThrottledStore& pfs, RunResult& result,
               io::MultiTierWriter* writer = nullptr);

  /// In situ analysis at the current epoch.
  AnalysisResult run_analysis();

  // --- accessors ----------------------------------------------------------
  const Particles& particles() const { return particles_; }
  Particles& mutable_particles() { return particles_; }
  double scale_factor() const { return a_; }
  std::uint64_t current_step() const { return step_; }
  const SimConfig& config() const { return config_; }
  const comm::CartDecomposition& decomposition() const { return decomp_; }
  const cosmo::Background& background() const { return bg_; }
  TimerRegistry& timers() { return timers_; }
  const TimerRegistry& timers() const { return timers_; }
  gpu::FlopRegistry& flops() { return flops_; }
  double overload_width() const { return overload_; }
  util::ThreadPool& thread_pool() { return pool_; }
  const util::ThreadPool& thread_pool() const { return pool_; }
  SimContext& context() { return ctx_; }
  const SimContext& context() const { return ctx_; }
  util::TraceRecorder& trace() { return trace_; }
  const util::TraceRecorder& trace() const { return trace_; }

  /// Snapshot every instrument (timers, flops, trace, threading) into a
  /// single registry; reduce() it across ranks for the global view.
  MetricsRegistry collect_metrics() const;

  /// Scale factor at the start of PM step s (uniform-in-a schedule).
  double a_at_step(std::uint64_t s) const;

 private:
  /// Common construction: `owned` is null when borrowing a shared
  /// context, else the legacy shim's private context (declared first so
  /// ctx_ can bind to it).
  Simulation(std::unique_ptr<SimContext> owned, SimContext* borrowed,
             comm::Communicator& comm, const SimConfig& config);

  void prime_solver_state();
  int assign_timestep_bins(double dt_pm);
  /// The actual PM step (phases 1-5), checkpoint excluded so the
  /// guardrail loop can audit before anything is persisted. `stats`
  /// (may be null) counts injected drill flips.
  StepReport step_body(SdcStepStats* stats);
  /// step() minus trace bookkeeping: the plain or SDC-guarded step.
  StepReport step_guarded(io::MultiTierWriter* writer);
  /// Allreduce this step's canonical phase times into report.phases.
  /// Collective; called only when tracing is enabled.
  void collect_phase_stats(StepReport& report, std::uint64_t step_index);
  void write_step_checkpoint(io::MultiTierWriter* writer, StepReport& report);
  void sdc_capture(SdcStepStats& stats);
  bool sdc_rollback();
  void sdc_inject(SdcStepStats* stats);
  std::uint32_t sdc_audit(SdcStepStats& stats);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> filter_active_pairs(
      const tree::ChainingMesh& mesh,
      const std::vector<std::pair<std::uint32_t, std::uint32_t>>& pairs,
      const std::vector<std::uint8_t>& active) const;
  std::vector<std::uint32_t> gas_indices() const;

  comm::Communicator& comm_;
  SimConfig config_;
  /// Legacy-shim ownership (null when the caller supplied the context);
  /// declared before ctx_/pool_ so the references bind to a live object,
  /// and before the solvers so the pool outlives every parallel region.
  std::unique_ptr<SimContext> private_ctx_;
  SimContext& ctx_;
  util::ThreadPool& pool_;
  /// Pool accounting at construction: finalize_run reports the delta, so
  /// a pool shared across simulations still yields per-run numbers.
  util::ThreadPoolStats pool_baseline_;
  comm::CartDecomposition decomp_;
  cosmo::Background bg_;
  cosmo::PowerSpectrum power_;
  mesh::PMSolver pm_;
  sph::SphSolver sph_;
  subgrid::SubgridModel subgrid_;
  integrator::Kdk kdk_;
  LoadBalancer lb_;

  Particles particles_;
  double a_ = 0.0;
  std::uint64_t step_ = 0;
  double overload_ = 0.0;
  double cm_bin_width_ = 0.0;
  /// Fault-injection trial counter for run_slice (monotonic across
  /// slices, so a sliced run draws the same schedule as a monolithic
  /// one).
  std::uint64_t fault_trial_ = 0;

  // --- SDC guardrail state (see core/sdc.h) -------------------------------
  SdcAuditor auditor_;
  util::PagedSnapshot snapshot_;
  const MemFaultInjector* sdc_fault_ = nullptr;
  std::uint64_t sdc_opportunity_ = 0;
  /// Scalars captured alongside the particle snapshot.
  std::uint64_t snap_step_ = 0;
  double snap_a_ = 0.0;
  std::size_t snap_count_ = 0;
  ConservationSnapshot snap_reference_;
  /// Census of the latest bin-assignment / SPH pass, for the auditor.
  integrator::TimestepAnomalyStats last_anomalies_;
  std::uint64_t sph_nonfinite_baseline_ = 0;

  TimerRegistry timers_;
  gpu::FlopRegistry flops_;
  util::TraceRecorder trace_;
};

}  // namespace crkhacc::core
