// Scenario farm: many small simulations through one shared context.
//
// Demonstrates core::ScenarioService — the calibration-campaign workflow
// from the paper's "many boxes, one machine" regime. N scenarios are
// queued as jobs and interleaved in slices through ONE thread pool and
// ONE immutable-asset cache (FFT plans, cooling tables, primed initial
// states), instead of paying every fixed cost N times.
//
//   ./examples/frontier_farm [flags]
//     --jobs N        number of scenarios to queue          (default 4)
//     --sweep         physics sweep over a COMMON realization: every
//                     job shares the base seed and varies the Plummer
//                     softening via a per-job params overlay; softening
//                     only enters the evolution, so jobs 2..N reuse job
//                     1's cached primed initial state
//     --fairness      per-job completion times + max/mean ratio
//     --threads N     shared pool width                     (default 4)
//     --np N          per-dimension particles per job       (default 8)
//     --steps N       PM steps per job                      (default 4)
//     --slice N       PM steps per scheduling slice         (default 1)
//     --policy P      round_robin | deficit                 (default rr)
//     --workdir DIR   enable per-job checkpoint tiers under DIR
//     --params FILE   param file applied to the base config AND the
//                     service (service_* keys)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/param_file.h"
#include "core/service.h"

using namespace crkhacc;

namespace {

core::SimConfig base_config(std::size_t np, int steps) {
  core::SimConfig config;
  config.np = np;
  config.box = 16.0;
  config.ng = 16;
  config.rs_cells = 1.0;
  config.z_init = 30.0;
  config.z_final = 10.0;
  config.num_pm_steps = steps;
  config.bins.max_depth = 2;
  config.hydro = true;
  config.subgrid_on = true;
  config.seed = 9001;
  return config;
}

const char* outcome_name(core::JobOutcome outcome) {
  switch (outcome) {
    case core::JobOutcome::kCompleted: return "completed";
    case core::JobOutcome::kCancelled: return "cancelled";
    case core::JobOutcome::kFailed: return "failed";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  int jobs = 4;
  bool sweep = false;
  bool fairness = false;
  std::size_t np = 8;
  int steps = 4;
  std::string params_path;

  core::ServiceConfig service;
  service.threads = 4;
  service.slice_steps = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--jobs") {
      jobs = std::atoi(next());
    } else if (arg == "--sweep") {
      sweep = true;
    } else if (arg == "--fairness") {
      fairness = true;
    } else if (arg == "--threads") {
      service.threads = std::atoi(next());
    } else if (arg == "--np") {
      np = static_cast<std::size_t>(std::atoi(next()));
    } else if (arg == "--steps") {
      steps = std::atoi(next());
    } else if (arg == "--slice") {
      service.slice_steps = std::atoi(next());
    } else if (arg == "--policy") {
      const std::string p = next();
      if (p == "deficit") {
        service.policy = core::SchedulePolicy::kDeficitWeighted;
      } else if (p == "round_robin" || p == "rr") {
        service.policy = core::SchedulePolicy::kRoundRobin;
      } else {
        std::fprintf(stderr, "unknown --policy '%s'\n", p.c_str());
        return 2;
      }
    } else if (arg == "--workdir") {
      service.workdir = next();
    } else if (arg == "--params") {
      params_path = next();
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (jobs < 1) jobs = 1;

  core::SimConfig config = base_config(np, steps);
  if (!params_path.empty()) {
    const auto params = core::ParamFile::load(params_path);
    if (!params) {
      std::fprintf(stderr, "cannot read parameter file %s\n",
                   params_path.c_str());
      return 1;
    }
    for (const auto& key : params->apply(config)) {
      std::fprintf(stderr, "warning: unknown parameter '%s'\n", key.c_str());
    }
    for (const auto& key : params->apply(service)) {
      std::fprintf(stderr, "warning: unknown service parameter '%s'\n",
                   key.c_str());
    }
  }

  std::printf(
      "scenario farm: %d job(s), %zu^3 pairs each, %d PM steps, "
      "%d thread(s), slice=%d, policy=%s%s\n\n",
      jobs, config.np, config.num_pm_steps, service.threads,
      service.slice_steps,
      service.policy == core::SchedulePolicy::kDeficitWeighted
          ? "deficit"
          : "round_robin",
      sweep ? ", sweep over softening (shared realization)" : "");

  core::ScenarioService farm(service);
  for (int j = 0; j < jobs; ++j) {
    core::ScenarioJob job;
    job.config = config;
    if (sweep) {
      // Physics sweep over one realization: same seed everywhere, and
      // softening only enters the evolution (never IC generation or
      // priming), so every job after the first reuses the cached primed
      // initial state and only pays for its own evolution.
      job.name = "soft" + std::to_string(j);
      char overlay[64];
      std::snprintf(overlay, sizeof overlay, "softening = %.4f",
                    0.05 + 0.01 * static_cast<double>(j));
      job.params = overlay;
    } else {
      // Independent realizations: per-job seeds, distinct universes.
      job.name = "box" + std::to_string(j);
      job.params = "seed = " + std::to_string(9001 + j);
    }
    job.priority = 1 + (j % 3);  // only matters under --policy deficit
    farm.submit(job);
  }

  const auto report = farm.drain();

  std::printf("%-8s %-10s %-8s %-8s %-10s %s\n", "job", "outcome", "steps",
              "slices", "wall(s)", "error");
  for (const auto& j : report.jobs) {
    std::printf("%-8s %-10s %-8llu %-8llu %-10.3f %s\n", j.name.c_str(),
                outcome_name(j.outcome),
                static_cast<unsigned long long>(j.run.steps_done),
                static_cast<unsigned long long>(j.slices),
                j.completion_seconds, j.error.c_str());
  }

  std::printf("\naggregate: %llu PM steps, %llu interruption(s), "
              "wall %.3f s\n",
              static_cast<unsigned long long>(report.aggregate.steps_done),
              static_cast<unsigned long long>(report.aggregate.interruptions),
              report.wall_seconds);
  std::printf("shared assets: cooling %llu hit / %llu miss, "
              "initial state %llu hit / %llu miss, "
              "fft plans %llu hit / %llu miss\n",
              static_cast<unsigned long long>(report.assets.cooling_hits),
              static_cast<unsigned long long>(report.assets.cooling_misses),
              static_cast<unsigned long long>(
                  report.assets.initial_state_hits),
              static_cast<unsigned long long>(
                  report.assets.initial_state_misses),
              static_cast<unsigned long long>(report.assets.fft_plan_hits),
              static_cast<unsigned long long>(report.assets.fft_plan_misses));

  if (fairness) {
    std::printf("\nfairness (completion time spread):\n");
    for (const auto& j : report.jobs) {
      if (j.outcome != core::JobOutcome::kCompleted) continue;
      std::printf("  %-8s %.3f s\n", j.name.c_str(), j.completion_seconds);
    }
    std::printf("  max/mean ratio: %.3f (1.0 = perfectly fair)\n",
                report.fairness_ratio());
  }

  return report.aggregate.completed ? 0 : 1;
}
