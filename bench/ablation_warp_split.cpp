// Ablation (Section IV-B2, Algorithm 1): warp splitting vs the naive
// leaf-pair execution, on the real physics kernels.
//
// google-benchmark timings for each short-range kernel under both launch
// modes, with counters for the quantities the paper's optimization
// targets: global loads, separable-partial evaluations, and register
// bytes per thread. The physics results of the two modes are identical
// (asserted in tests/test_gpu.cpp); this bench measures the cost side.
#include <benchmark/benchmark.h>

#include "core/particles.h"
#include "gpu/device.h"
#include "sph/eos.h"
#include "gpu/warp.h"
#include "gravity/short_range.h"
#include "mesh/force_split.h"
#include "sph/pair_kernels.h"
#include "sph/solver.h"
#include "tree/chaining_mesh.h"
#include "util/rng.h"

using namespace crkhacc;

namespace {

constexpr double kBox = 8.0;
constexpr std::size_t kCount = 4000;

/// Shared fixture: a clustered gas cloud with valid densities and h.
struct Fixture {
  Particles particles;
  tree::ChainingMesh mesh;
  sph::SphScratch scratch;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;

  Fixture()
      : mesh(
            [] {
              comm::Box3 box;
              box.lo = {0, 0, 0};
              box.hi = {kBox, kBox, kBox};
              return box;
            }(),
            {2.0, 64}) {
    SplitMix64 rng(7);
    for (std::size_t i = 0; i < kCount; ++i) {
      // Half clustered, half uniform: realistic leaf occupancy spread.
      float x, y, z;
      if (i % 2) {
        x = static_cast<float>(4.0 + 0.8 * rng.next_gaussian());
        y = static_cast<float>(4.0 + 0.8 * rng.next_gaussian());
        z = static_cast<float>(4.0 + 0.8 * rng.next_gaussian());
        x = std::clamp(x, 0.01f, static_cast<float>(kBox) - 0.01f);
        y = std::clamp(y, 0.01f, static_cast<float>(kBox) - 0.01f);
        z = std::clamp(z, 0.01f, static_cast<float>(kBox) - 0.01f);
      } else {
        x = static_cast<float>(rng.next_double() * kBox);
        y = static_cast<float>(rng.next_double() * kBox);
        z = static_cast<float>(rng.next_double() * kBox);
      }
      const auto idx =
          particles.push_back(i, Species::kGas, x, y, z, 0, 0, 0, 0.5f);
      particles.hsml[idx] = 0.35f;
      particles.u[idx] = 50.0f;
      particles.rho[idx] = 8.0f;
    }
    mesh.build(particles);
    pairs = mesh.interaction_pairs(0.8);
    scratch.resize(particles.size());
    for (std::size_t i = 0; i < particles.size(); ++i) {
      scratch.volume[i] = particles.mass[i] / particles.rho[i];
      scratch.press[i] = sph::pressure(particles.rho[i], particles.u[i]);
      scratch.cs[i] = sph::sound_speed(particles.u[i]);
    }
  }
};

Fixture& fixture() {
  static Fixture instance;
  return instance;
}

void report(benchmark::State& state, const gpu::LaunchStats& stats,
            std::uint64_t iterations) {
  const double inv = 1.0 / static_cast<double>(iterations);
  state.counters["interactions"] =
      static_cast<double>(stats.interactions) * inv;
  state.counters["global_loads"] =
      static_cast<double>(stats.global_loads) * inv;
  state.counters["partial_evals"] =
      static_cast<double>(stats.partial_evals) * inv;
  state.counters["reg_bytes"] =
      static_cast<double>(stats.register_bytes_per_thread);
  state.counters["GFLOPs"] = benchmark::Counter(
      stats.flops * inv, benchmark::Counter::kIsRate,
      benchmark::Counter::kIs1000);
}

template <gpu::LaunchMode Mode>
void BM_Density(benchmark::State& state) {
  auto& f = fixture();
  sph::DensityKernel kernel(f.particles, f.scratch, nullptr);
  gpu::LaunchStats total;
  std::uint64_t iterations = 0;
  for (auto _ : state) {
    const gpu::LaunchConfig config{
        .warp_size = static_cast<std::uint32_t>(state.range(0)), .mode = Mode};
    total += gpu::launch_pair_kernel(kernel, f.mesh, f.pairs, config);
    ++iterations;
  }
  report(state, total, iterations);
}

template <gpu::LaunchMode Mode>
void BM_CrkMoments(benchmark::State& state) {
  auto& f = fixture();
  sph::CrkMomentKernel kernel(f.particles, f.scratch, nullptr);
  gpu::LaunchStats total;
  std::uint64_t iterations = 0;
  for (auto _ : state) {
    const gpu::LaunchConfig config{
        .warp_size = static_cast<std::uint32_t>(state.range(0)), .mode = Mode};
    total += gpu::launch_pair_kernel(kernel, f.mesh, f.pairs, config);
    ++iterations;
  }
  report(state, total, iterations);
}

template <gpu::LaunchMode Mode>
void BM_MomentumEnergy(benchmark::State& state) {
  auto& f = fixture();
  sph::MomentumEnergyKernel kernel(f.particles, f.scratch, nullptr,
                                   sph::ViscosityParams{}, 1.0f);
  gpu::LaunchStats total;
  std::uint64_t iterations = 0;
  for (auto _ : state) {
    const gpu::LaunchConfig config{
        .warp_size = static_cast<std::uint32_t>(state.range(0)), .mode = Mode};
    total += gpu::launch_pair_kernel(kernel, f.mesh, f.pairs, config);
    ++iterations;
  }
  report(state, total, iterations);
}

template <gpu::LaunchMode Mode>
void BM_Gravity(benchmark::State& state) {
  auto& f = fixture();
  static const mesh::ForceSplit split(0.15);
  gravity::ShortRangeKernel kernel(f.particles, nullptr, &split, 43.0f, 0.05f,
                                   0.8f);
  gpu::LaunchStats total;
  std::uint64_t iterations = 0;
  for (auto _ : state) {
    const gpu::LaunchConfig config{
        .warp_size = static_cast<std::uint32_t>(state.range(0)), .mode = Mode};
    total += gpu::launch_pair_kernel(kernel, f.mesh, f.pairs, config);
    ++iterations;
  }
  report(state, total, iterations);
}

}  // namespace

BENCHMARK_TEMPLATE(BM_Density, gpu::LaunchMode::kNaive)->Arg(64);
BENCHMARK_TEMPLATE(BM_Density, gpu::LaunchMode::kWarpSplit)->Arg(64)->Arg(32);
BENCHMARK_TEMPLATE(BM_CrkMoments, gpu::LaunchMode::kNaive)->Arg(64);
BENCHMARK_TEMPLATE(BM_CrkMoments, gpu::LaunchMode::kWarpSplit)->Arg(64)->Arg(32);
BENCHMARK_TEMPLATE(BM_MomentumEnergy, gpu::LaunchMode::kNaive)->Arg(64);
BENCHMARK_TEMPLATE(BM_MomentumEnergy, gpu::LaunchMode::kWarpSplit)
    ->Arg(64)
    ->Arg(32);
BENCHMARK_TEMPLATE(BM_Gravity, gpu::LaunchMode::kNaive)->Arg(64);
BENCHMARK_TEMPLATE(BM_Gravity, gpu::LaunchMode::kWarpSplit)->Arg(64)->Arg(32);
