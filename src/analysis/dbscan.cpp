#include "analysis/dbscan.h"

#include "analysis/union_find.h"
#include "tree/lbvh.h"
#include "util/assertions.h"

namespace crkhacc::analysis {

DbscanResult dbscan(std::span<const float> x, std::span<const float> y,
                    std::span<const float> z, float eps, std::size_t min_pts) {
  const std::size_t n = x.size();
  CHECK(y.size() == n && z.size() == n);
  DbscanResult result;
  result.cluster_of.assign(n, DbscanResult::kNoise);
  result.is_core.assign(n, 0);
  if (n == 0) return result;

  const tree::Bvh bvh(x, y, z);

  // Pass 1: core identification (neighbor count includes the point).
  for (std::size_t i = 0; i < n; ++i) {
    if (bvh.count_within(x[i], y[i], z[i], eps) >= min_pts) {
      result.is_core[i] = 1;
    }
  }

  // Pass 2: union core points that are eps-neighbors.
  UnionFind dsu(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!result.is_core[i]) continue;
    bvh.radius_query(x[i], y[i], z[i], eps, [&](std::uint32_t j) {
      if (j > i && result.is_core[j]) {
        dsu.unite(static_cast<std::uint32_t>(i), j);
      }
    });
  }

  // Dense ids for core components.
  std::vector<std::int32_t> id_of_root(n, DbscanResult::kNoise);
  std::int32_t next_id = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!result.is_core[i]) continue;
    const std::uint32_t r = dsu.find(static_cast<std::uint32_t>(i));
    if (id_of_root[r] == DbscanResult::kNoise) id_of_root[r] = next_id++;
    result.cluster_of[i] = id_of_root[r];
  }

  // Pass 3: border points join any neighboring core's cluster.
  for (std::size_t i = 0; i < n; ++i) {
    if (result.is_core[i]) continue;
    std::int32_t assigned = DbscanResult::kNoise;
    bvh.radius_query(x[i], y[i], z[i], eps, [&](std::uint32_t j) {
      if (assigned == DbscanResult::kNoise && result.is_core[j]) {
        assigned = result.cluster_of[j];
      }
    });
    result.cluster_of[i] = assigned;
  }

  result.num_clusters = static_cast<std::size_t>(next_id);
  return result;
}

}  // namespace crkhacc::analysis
