# Empty compiler generated dependencies file for crkhacc_fft.
# This may be replaced when dependencies are built.
