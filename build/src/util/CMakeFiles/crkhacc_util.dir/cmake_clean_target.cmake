file(REMOVE_RECURSE
  "libcrkhacc_util.a"
)
