#include "core/load_balancer.h"

#include <algorithm>
#include <numeric>

#include "util/assertions.h"
#include "util/trace.h"

namespace crkhacc::core {
namespace {

/// Per-rank load sample exchanged by the decision collective.
struct RankLoad {
  double census = 0.0;
  double measured = 0.0;
  std::uint64_t nfine = 0;
};

}  // namespace

std::vector<double> lb_bin_costs(const tree::ChainingMesh& mesh) {
  const auto& dims = mesh.dims();
  const std::size_t nbins = mesh.num_bins();
  std::vector<double> counts(nbins);
  for (std::size_t b = 0; b < nbins; ++b) {
    counts[b] = static_cast<double>(mesh.bin_particle_count(b));
  }
  std::vector<double> costs(nbins, 0.0);
  for (int bz = 0; bz < dims[2]; ++bz) {
    for (int by = 0; by < dims[1]; ++by) {
      for (int bx = 0; bx < dims[0]; ++bx) {
        const std::size_t b =
            (static_cast<std::size_t>(bz) * dims[1] + by) * dims[0] + bx;
        const double nb = counts[b];
        if (nb <= 0.0) continue;
        double neighbor_sum = 0.0;
        for (int dz = -1; dz <= 1; ++dz) {
          const int cz = bz + dz;
          if (cz < 0 || cz >= dims[2]) continue;
          for (int dy = -1; dy <= 1; ++dy) {
            const int cy = by + dy;
            if (cy < 0 || cy >= dims[1]) continue;
            for (int dx = -1; dx <= 1; ++dx) {
              const int cx = bx + dx;
              if (cx < 0 || cx >= dims[0]) continue;
              if (dx == 0 && dy == 0 && dz == 0) continue;
              const std::size_t nbr =
                  (static_cast<std::size_t>(cz) * dims[1] + cy) * dims[0] + cx;
              neighbor_sum += counts[nbr];
            }
          }
        }
        costs[b] = nb * (nb - 1.0) + nb * neighbor_sum;
      }
    }
  }
  return costs;
}

double lb_census_cost(const tree::ChainingMesh& mesh) {
  const auto costs = lb_bin_costs(mesh);
  return std::accumulate(costs.begin(), costs.end(), 0.0);
}

std::vector<double> lb_blend_costs(const std::vector<double>& census,
                                   const std::vector<double>& measured) {
  CHECK(census.size() == measured.size());
  const std::size_t n = census.size();
  const double census_sum = std::accumulate(census.begin(), census.end(), 0.0);
  const double measured_sum =
      std::accumulate(measured.begin(), measured.end(), 0.0);
  const bool all_measured =
      n > 0 && std::all_of(measured.begin(), measured.end(),
                           [](double m) { return m > 0.0; });
  if (!all_measured || census_sum <= 0.0 || measured_sum <= 0.0) {
    return census;
  }
  const double mean_census = census_sum / static_cast<double>(n);
  const double mean_measured = measured_sum / static_cast<double>(n);
  std::vector<double> blended(n);
  for (std::size_t r = 0; r < n; ++r) {
    blended[r] = 0.5 * mean_census *
                 (census[r] / mean_census + measured[r] / mean_measured);
  }
  return blended;
}

LbPlan lb_assign(const std::vector<double>& costs,
                 const comm::CartDecomposition& decomp,
                 const LbConfig& config) {
  LbPlan plan;
  const std::size_t n = costs.size();
  if (n < 2) return plan;
  const double mean =
      std::accumulate(costs.begin(), costs.end(), 0.0) / static_cast<double>(n);
  if (mean <= 0.0) return plan;
  const double peak = *std::max_element(costs.begin(), costs.end());
  plan.imbalance_before = peak / mean;
  plan.imbalance_after = plan.imbalance_before;

  // Donors in descending cost (ties to the lower rank: stable sort over
  // the ascending rank order).
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return costs[a] > costs[b];
  });

  std::vector<std::uint8_t> used(n, 0);
  std::vector<double> shifted = costs;
  for (const int donor : order) {
    if (costs[donor] <= mean) break;  // the rest are not overloaded
    if (used[donor]) continue;
    // Cheapest unused underloaded neighbor; ascending-rank scan with a
    // strict < keeps ties on the lower rank.
    std::vector<int> neighbors = decomp.neighbors_of(donor);
    std::sort(neighbors.begin(), neighbors.end());
    int helper = -1;
    for (const int h : neighbors) {
      if (used[h] || costs[h] >= mean) continue;
      if (helper < 0 || costs[h] < costs[helper]) helper = h;
    }
    if (helper < 0) continue;
    const double delta =
        std::min({costs[donor] - mean, mean - costs[helper],
                  config.max_fraction * costs[donor]});
    if (delta <= 0.0) continue;
    used[donor] = used[helper] = 1;
    plan.migrations.push_back(LbMigration{donor, helper, delta});
    shifted[donor] -= delta;
    shifted[helper] += delta;
  }
  if (!plan.migrations.empty()) {
    plan.imbalance_after =
        *std::max_element(shifted.begin(), shifted.end()) / mean;
  }
  return plan;
}

bool lb_gate(double ratio, bool engaged, const LbConfig& config) {
  if (config.threshold <= 0.0) return false;
  if (ratio > config.threshold) return true;
  const double rearm =
      std::max(1.0, 1.0 + config.hysteresis * (config.threshold - 1.0));
  return engaged && ratio > rearm;
}

std::vector<std::uint8_t> lb_pick_bins(const std::vector<double>& bin_costs,
                                       double delta) {
  std::vector<std::uint8_t> flags(bin_costs.size(), 0);
  if (delta <= 0.0) return flags;
  std::vector<std::size_t> order(bin_costs.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    return bin_costs[a] > bin_costs[b];
  });
  double shipped = 0.0;
  for (const std::size_t b : order) {
    if (bin_costs[b] <= 0.0) break;
    if (shipped + bin_costs[b] / 2.0 > delta) continue;
    flags[b] = 1;
    shipped += bin_costs[b];
  }
  return flags;
}

LbDecision LoadBalancer::decide(const tree::ChainingMesh& mesh,
                                std::uint64_t nfine,
                                double measured_seconds) {
  LbDecision d;
  if (!enabled()) return d;

  const std::vector<double> bin_costs = lb_bin_costs(mesh);
  RankLoad mine;
  mine.census = std::accumulate(bin_costs.begin(), bin_costs.end(), 0.0);
  mine.measured = config_.use_measured ? measured_seconds : 0.0;
  mine.nfine = nfine;
  const std::vector<RankLoad> loads = comm_.allgather_value(mine);

  std::vector<double> census(loads.size()), measured(loads.size());
  for (std::size_t r = 0; r < loads.size(); ++r) {
    census[r] = loads[r].census;
    measured[r] = loads[r].measured;
  }
  const std::vector<double> costs = lb_blend_costs(census, measured);

  const LbPlan plan = lb_assign(costs, decomp_, config_);
  d.decided = true;
  d.imbalance_before = plan.imbalance_before;
  d.imbalance_after = plan.imbalance_before;
  ++decisions_;

  engaged_ = lb_gate(plan.imbalance_before, engaged_, config_);
  if (!engaged_ || plan.migrations.empty()) return d;

  d.imbalance_after = plan.imbalance_after;
  const int rank = comm_.rank();
  for (const LbMigration& m : plan.migrations) {
    if (m.donor == rank) {
      d.helper = m.helper;
      // The bin pick works in census units; rescale the (possibly
      // measurement-blended) delta back onto this rank's census share.
      const double delta_census =
          costs[m.donor] > 0.0 ? m.delta * (census[m.donor] / costs[m.donor])
                               : m.delta;
      d.bin_migrated = lb_pick_bins(bin_costs, delta_census);
    }
    if (m.helper == rank) {
      d.donors.push_back(m.donor);
      d.donor_substeps.push_back(loads[m.donor].nfine);
    }
  }
  // Serve donors in ascending rank order every substep — the fixed
  // order both sides of the protocol agree on.
  std::vector<std::size_t> by_rank(d.donors.size());
  std::iota(by_rank.begin(), by_rank.end(), 0);
  std::sort(by_rank.begin(), by_rank.end(), [&](std::size_t a, std::size_t b) {
    return d.donors[a] < d.donors[b];
  });
  std::vector<int> donors;
  std::vector<std::uint64_t> substeps;
  for (const std::size_t i : by_rank) {
    donors.push_back(d.donors[i]);
    substeps.push_back(d.donor_substeps[i]);
  }
  d.donors = std::move(donors);
  d.donor_substeps = std::move(substeps);

  ++migration_steps_;
  return d;
}

comm::WorkPacket extract_work_packet(const Particles& particles,
                                     const tree::ChainingMesh& mesh,
                                     const gpu::LaunchPlan& plan,
                                     const std::vector<std::uint8_t>& skip_task,
                                     double a_mid, std::uint32_t substep,
                                     std::uint32_t donor_rank) {
  comm::WorkPacket packet;
  packet.donor = donor_rank;
  packet.substep = substep;
  packet.a_mid = a_mid;

  // Shipped leaves: migrated owners plus every partner their tiles read,
  // ascending global-leaf order (so local ids resolve by binary search).
  std::vector<std::uint32_t> needed;
  for (std::size_t t = 0; t < plan.num_owners(); ++t) {
    if (!skip_task[t]) continue;
    needed.push_back(plan.owner(t));
    for (const gpu::LaunchPlan::Entry& e : plan.entries(t)) {
      needed.push_back(e.partner);
    }
  }
  std::sort(needed.begin(), needed.end());
  needed.erase(std::unique(needed.begin(), needed.end()), needed.end());
  const auto local_id = [&](std::uint32_t leaf) {
    const auto it = std::lower_bound(needed.begin(), needed.end(), leaf);
    return static_cast<std::uint32_t>(it - needed.begin());
  };

  packet.leaf_begin.reserve(needed.size() + 1);
  packet.leaf_begin.push_back(0);
  for (const std::uint32_t leaf : needed) {
    const tree::Leaf& l = mesh.leaf(leaf);
    packet.leaf_begin.push_back(packet.leaf_begin.back() + l.size());
    for (std::uint32_t s = l.begin; s < l.end; ++s) {
      const std::uint32_t i = mesh.permutation()[s];
      packet.x.push_back(particles.x[i]);
      packet.y.push_back(particles.y[i]);
      packet.z.push_back(particles.z[i]);
      packet.mass.push_back(particles.mass[i]);
    }
  }

  packet.task_entry_begin.push_back(0);
  for (std::size_t t = 0; t < plan.num_owners(); ++t) {
    if (!skip_task[t]) continue;
    packet.task_owner.push_back(local_id(plan.owner(t)));
    for (const gpu::LaunchPlan::Entry& e : plan.entries(t)) {
      packet.entry_partner.push_back(local_id(e.partner));
      packet.entry_side.push_back(static_cast<std::uint8_t>(e.side));
    }
    packet.task_entry_begin.push_back(
        static_cast<std::uint32_t>(packet.entry_partner.size()));
  }
  return packet;
}

void apply_work_reply(Particles& particles, const tree::ChainingMesh& mesh,
                      const gpu::LaunchPlan& plan,
                      const std::vector<std::uint8_t>& skip_task,
                      const comm::WorkReply& reply,
                      const std::uint8_t* active) {
  std::size_t k = 0;
  for (std::size_t t = 0; t < plan.num_owners(); ++t) {
    if (!skip_task[t]) continue;
    const tree::Leaf& l = mesh.leaf(plan.owner(t));
    for (std::uint32_t s = l.begin; s < l.end; ++s, ++k) {
      const std::uint32_t i = mesh.permutation()[s];
      if (active && !active[i]) continue;
      particles.ax[i] = reply.ax[k];
      particles.ay[i] = reply.ay[k];
      particles.az[i] = reply.az[k];
    }
  }
  CHECK_MSG(k == reply.ax.size(), "work reply slot count disagrees");
}

gpu::LaunchStats LoadBalancer::donor_substep(
    Particles& particles, const tree::ChainingMesh& mesh,
    const std::vector<Pair>& pairs, const mesh::ForceSplit* split,
    const gravity::GravityConfig& gconfig, double a_mid,
    const std::uint8_t* active, gpu::FlopRegistry& flops,
    util::ThreadPool* pool, const LbDecision& d, std::uint64_t substep) {
  gpu::LaunchPlan plan;
  {
    HACC_TRACE_SPAN("launch_plan");
    plan = gpu::LaunchPlan(mesh, pairs);
  }
  std::vector<std::uint8_t> skip(plan.num_owners(), 0);
  for (std::size_t t = 0; t < plan.num_owners(); ++t) {
    skip[t] = d.bin_migrated[mesh.leaf_bin(plan.owner(t))];
  }
  {
    HACC_TRACE_SPAN("lb_ship");
    const comm::WorkPacket packet =
        extract_work_packet(particles, mesh, plan, skip, a_mid,
                            static_cast<std::uint32_t>(substep),
                            static_cast<std::uint32_t>(comm_.rank()));
    comm::send_work_packet(comm_, d.helper, packet);
    ++packets_sent_;
  }
  const gpu::LaunchStats stats = gravity::compute_short_range_owner_tasks(
      particles, mesh, plan, split, gconfig, a_mid, active, flops, skip.data(),
      pool);
  {
    HACC_TRACE_SPAN("lb_return");
    const comm::WorkReply reply = comm::recv_work_reply(comm_, d.helper);
    CHECK_MSG(reply.substep == substep, "work reply substep disagrees");
    apply_work_reply(particles, mesh, plan, skip, reply, active);
  }
  return stats;
}

void LoadBalancer::serve(const LbDecision& d, std::uint64_t substep,
                         const mesh::ForceSplit* split,
                         const gravity::GravityConfig& gconfig,
                         gpu::FlopRegistry& flops, util::ThreadPool* pool) {
  for (std::size_t i = 0; i < d.donors.size(); ++i) {
    if (substep >= d.donor_substeps[i]) continue;
    HACC_TRACE_SPAN("lb_serve");
    const comm::WorkPacket packet = comm::recv_work_packet(comm_, d.donors[i]);
    CHECK_MSG(packet.substep == substep, "work packet substep disagrees");
    const comm::WorkReply reply =
        gravity::execute_work_packet(packet, split, gconfig, flops, pool);
    comm::send_work_reply(comm_, d.donors[i], reply);
    ++packets_served_;
  }
}

void LoadBalancer::drain(const LbDecision& d, std::uint64_t from_substep,
                         const mesh::ForceSplit* split,
                         const gravity::GravityConfig& gconfig,
                         gpu::FlopRegistry& flops, util::ThreadPool* pool) {
  std::uint64_t deepest = 0;
  for (const std::uint64_t s : d.donor_substeps) deepest = std::max(deepest, s);
  for (std::uint64_t s = from_substep; s < deepest; ++s) {
    serve(d, s, split, gconfig, flops, pool);
  }
}

}  // namespace crkhacc::core
