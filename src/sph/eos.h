// Ideal-gas equation of state.
#pragma once

#include <cmath>

#include "cosmology/units.h"

namespace crkhacc::sph {

/// Pressure of an ideal gas: P = (gamma - 1) rho u.
inline float pressure(float rho, float u) {
  return static_cast<float>(units::kGamma - 1.0) * rho * u;
}

/// Adiabatic sound speed: c = sqrt(gamma (gamma-1) u).
inline float sound_speed(float u) {
  const float g = static_cast<float>(units::kGamma);
  return std::sqrt(std::max(0.0f, g * (g - 1.0f) * u));
}

}  // namespace crkhacc::sph
