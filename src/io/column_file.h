// Self-describing chunked column checkpoint format ("CKC2", format v2).
//
// Modeled on MP-Gadget's bigfile layout: a checkpoint is a small header
// plus a column directory (names, dtypes, element counts) followed by
// fixed-size column chunks, each carrying its own length and CRC32. A
// torn write or bit flip therefore damages *a chunk*, not the file — the
// reader reports exactly which column/chunk is bad, and the offline
// audit tool (io/ckpt_audit.h) can patch it back from a redundant tier
// copy without the simulator running.
//
// Differential checkpoints ride on the same layout: a diff file lists
// every column at its full chunk count but carries only the chunks whose
// page CRC changed since the previous write (tracked by CkptDiffPlanner
// via util::PagedSnapshot in region-aligned mode, page == chunk). Files
// chain full -> diff -> diff ... via `base_step`, bounded by
// `diff_max_chain` before the next forced full; replaying the chain is
// bitwise identical to a full-write restore.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/particles.h"
#include "io/generic_io.h"
#include "util/snapshot.h"

namespace crkhacc::io {

/// Knobs for the checkpoint writer/reader; embedded in both SimConfig
/// (param file) and MultiTierConfig (writer).
struct CkptConfig {
  int format_version = static_cast<int>(kCkptFormatVersion);
  bool diff = false;          ///< write differential checkpoints
  int diff_max_chain = 7;     ///< diffs allowed after a full before the next forced full
  std::size_t chunk_bytes = util::PagedSnapshot::kDefaultPageBytes;
  bool redundant_local = false;   ///< keep the node-local copy after the PFS bleed (repair source)
  bool audit_on_restore = false;  ///< run ckpt_audit (repairing if possible) before recovery
};

enum class CkptKind : std::uint32_t { kFull = 0, kDiff = 1 };

enum class ColumnType : std::uint32_t { kU8 = 1, kU64 = 2, kF32 = 3 };

/// A read-only view of one SoA column to serialize.
struct ColumnView {
  std::string name;
  ColumnType type = ColumnType::kF32;
  std::uint32_t elem_size = 4;
  const void* data = nullptr;
  std::uint64_t elem_count = 0;
  std::uint64_t bytes() const { return elem_count * elem_size; }
};

/// A writable view of one SoA column to restore into.
struct MutableColumnView {
  std::string name;
  ColumnType type = ColumnType::kF32;
  std::uint32_t elem_size = 4;
  void* data = nullptr;
  std::uint64_t elem_count = 0;
  std::uint64_t bytes() const { return elem_count * elem_size; }
};

/// The checkpointed particle columns (id, positions, velocities, mass,
/// hydro state, species/bin/ghost) in canonical order. Per-step work
/// arrays (ax/ay/az/du) are recomputed after restore and not serialized
/// — same coverage as Particles::Record.
std::vector<ColumnView> particle_columns(const Particles& p);
std::vector<MutableColumnView> particle_columns(Particles& p);

/// Header contents of one checkpoint file.
struct CkptFileMeta {
  SnapshotMeta snapshot;
  CkptKind kind = CkptKind::kFull;
  std::uint64_t base_step = 0;   ///< previous file in the chain (== step for fulls)
  std::uint32_t chain_index = 0; ///< 0 for fulls, 1..diff_max_chain for diffs
  std::uint32_t chunk_bytes = 0;
};

/// Per-column chunk selection for a differential write: mask[c][k] != 0
/// means chunk k of column c is carried in the file.
using ChunkMask = std::vector<std::vector<std::uint8_t>>;

/// Serialize `columns` into the CKC2 wire format. `mask == nullptr`
/// writes every chunk (full file); otherwise only the selected chunks
/// are carried (diff file). meta.snapshot.particle_count must equal the
/// element count of every column.
std::vector<std::uint8_t> encode_checkpoint(const CkptFileMeta& meta,
                                            std::span<const ColumnView> columns,
                                            const ChunkMask* mask = nullptr);

/// One chunk as recorded in a file's directory, with its payload
/// location and integrity verdict.
struct ParsedChunk {
  std::uint32_t index = 0;   ///< chunk index within the column
  std::uint32_t length = 0;
  std::uint32_t crc = 0;
  std::uint64_t offset = 0;  ///< payload byte offset within the file
  bool valid = false;        ///< payload present and CRC matches
};

struct ParsedColumn {
  std::string name;
  ColumnType type = ColumnType::kF32;
  std::uint32_t elem_size = 0;
  std::uint64_t elem_count = 0;
  std::uint32_t num_chunks = 0;      ///< chunk count of the whole column
  std::vector<ParsedChunk> chunks;   ///< chunks carried in this file
};

struct ParsedCheckpoint {
  CkptFileMeta meta;
  std::vector<ParsedColumn> columns;
  std::uint64_t chunks_checked = 0;
  std::uint64_t chunks_damaged = 0;
  bool all_chunks_valid() const { return chunks_damaged == 0; }
};

enum class ParseStatus {
  kOk,             ///< header + directory intact; chunks individually flagged
  kNotCkpt,        ///< unrecognized magic
  kLegacy,         ///< v1 "GIO1" blob — rejected, warn-once
  kBadVersion,     ///< written by a newer format than this reader
  kCorruptHeader,  ///< header/directory truncated or CRC mismatch
};

/// Parse a CKC2 file. On kOk, `out` describes every column and flags
/// each carried chunk's integrity individually — a damaged chunk does
/// NOT fail the parse, it is localized. Any other status leaves `out`
/// unspecified.
ParseStatus parse_checkpoint(const std::vector<std::uint8_t>& bytes,
                             ParsedCheckpoint& out);

/// Copy every valid carried chunk of `file` into the matching (by name)
/// destination column. Unknown column names are skipped with a warn-once
/// (forward compatibility); a known column whose dtype/element count
/// disagrees with its destination fails. Returns false if any carried
/// chunk is damaged or a known column mismatches.
bool apply_chunks(const ParsedCheckpoint& file,
                  const std::vector<std::uint8_t>& bytes,
                  std::span<const MutableColumnView> dest);

/// True if every column's chunks are all carried and valid (i.e. the
/// file alone fully reconstructs the state — fulls should satisfy this).
bool is_complete(const ParsedCheckpoint& file);

/// Plans full vs differential checkpoint writes for one rank. Captures
/// the column payload into a region-aligned PagedSnapshot (page ==
/// chunk) and diffs page CRCs against the previous write; the baseline
/// advances only when plan() is called, so withheld checkpoints (e.g.
/// SDC escalation) never desynchronize the chain.
class CkptDiffPlanner {
 public:
  explicit CkptDiffPlanner(const CkptConfig& config);

  struct Plan {
    CkptKind kind = CkptKind::kFull;
    std::uint64_t base_step = 0;
    std::uint32_t chain_index = 0;
    ChunkMask mask;  ///< empty for full writes
    std::uint64_t chunks_total = 0;
    std::uint64_t chunks_written = 0;
    std::uint64_t chain_root = 0;  ///< step of the full anchoring this chain
  };

  /// Decide what the checkpoint of `step` should carry, and advance the
  /// baseline to the current column contents.
  Plan plan(std::uint64_t step, std::span<const ColumnView> columns);

  /// Same, but forced full (used by the direct-write fallback path).
  Plan plan_full(std::uint64_t step, std::span<const ColumnView> columns);

 private:
  Plan finish_full(std::uint64_t step, std::span<const ColumnView> columns);
  std::uint64_t total_chunks(std::span<const ColumnView> columns) const;

  CkptConfig config_;
  util::PagedSnapshot tracker_;
  std::uint64_t chain_root_ = 0;
  std::uint64_t prev_step_ = 0;
  std::uint32_t chain_index_ = 0;
};

}  // namespace crkhacc::io
