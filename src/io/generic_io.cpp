#include "io/generic_io.h"

#include <fstream>

#include "io/column_file.h"

namespace crkhacc::io {

std::vector<std::uint8_t> encode_snapshot(const SnapshotMeta& meta,
                                          const Particles& particles,
                                          bool include_ghosts) {
  // Ghost filtering needs a contiguous copy either way (the columns must
  // be dense); reuse the container so column views line up.
  Particles filtered;
  const Particles* source = &particles;
  if (!include_ghosts) {
    filtered.reserve(particles.size());
    for (std::size_t i = 0; i < particles.size(); ++i) {
      if (particles.is_owned(i)) filtered.append_from(particles, i);
    }
    source = &filtered;
  }

  CkptFileMeta file_meta;
  file_meta.snapshot = meta;
  file_meta.snapshot.particle_count = source->size();
  file_meta.snapshot.format_version = kCkptFormatVersion;
  file_meta.kind = CkptKind::kFull;
  file_meta.base_step = meta.step;
  file_meta.chain_index = 0;
  file_meta.chunk_bytes = static_cast<std::uint32_t>(CkptConfig{}.chunk_bytes);
  const auto columns = particle_columns(*source);
  return encode_checkpoint(file_meta, columns, nullptr);
}

bool decode_snapshot(const std::vector<std::uint8_t>& bytes,
                     SnapshotMeta& meta, Particles& out) {
  ParsedCheckpoint parsed;
  if (parse_checkpoint(bytes, parsed) != ParseStatus::kOk) return false;
  // A standalone decode needs the whole state in one file: full kind,
  // every chunk carried and intact. Differential files are only readable
  // through the chain walk in checkpoint.cpp.
  if (parsed.meta.kind != CkptKind::kFull) return false;
  if (!is_complete(parsed)) return false;

  Particles tmp;
  tmp.resize(parsed.meta.snapshot.particle_count);
  const auto dest = particle_columns(tmp);
  // Every column this reader needs must be carried; extra columns in the
  // file are skipped (warn-once) inside apply_chunks.
  for (const MutableColumnView& d : dest) {
    bool found = false;
    for (const ParsedColumn& c : parsed.columns) {
      if (c.name == d.name) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  if (!apply_chunks(parsed, bytes, dest)) return false;

  meta = parsed.meta.snapshot;
  if (out.empty()) {
    out = std::move(tmp);
  } else {
    out.reserve(out.size() + tmp.size());
    for (std::size_t i = 0; i < tmp.size(); ++i) out.append_from(tmp, i);
  }
  return true;
}

bool write_snapshot_file(const std::string& path, const SnapshotMeta& meta,
                         const Particles& particles, bool include_ghosts) {
  const auto bytes = encode_snapshot(meta, particles, include_ghosts);
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return false;
  file.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(file);
}

bool read_snapshot_file(const std::string& path, SnapshotMeta& meta,
                        Particles& out) {
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  if (!file) return false;
  const auto size = static_cast<std::size_t>(file.tellg());
  file.seekg(0);
  std::vector<std::uint8_t> bytes(size);
  file.read(reinterpret_cast<char*>(bytes.data()),
            static_cast<std::streamsize>(size));
  if (!file) return false;
  return decode_snapshot(bytes, meta, out);
}

}  // namespace crkhacc::io
