// Tests for KDK operators and hierarchical timestep bins.
#include <gtest/gtest.h>

#include <cmath>

#include "core/particles.h"
#include "cosmology/units.h"
#include "integrator/kdk.h"
#include "integrator/timestep.h"

namespace crkhacc::integrator {
namespace {

cosmo::Background lcdm() { return cosmo::Background(cosmo::Parameters{}); }

Particles one_particle(float x, float vx, Species species = Species::kDarkMatter) {
  Particles p;
  const auto i = p.push_back(0, species, x, 1.0f, 1.0f, vx, 0, 0, 1.0f);
  if (species == Species::kGas) p.u[i] = 100.0f;
  return p;
}

// --- timestep bins ---------------------------------------------------------

TEST(TimeBins, BinForBoundaries) {
  const double dt_pm = 1.0;
  EXPECT_EQ(bin_for(2.0, dt_pm, 8), 0);    // slower than PM: coarsest
  EXPECT_EQ(bin_for(1.0, dt_pm, 8), 0);
  EXPECT_EQ(bin_for(0.6, dt_pm, 8), 1);
  EXPECT_EQ(bin_for(0.25, dt_pm, 8), 2);
  EXPECT_EQ(bin_for(0.2, dt_pm, 8), 3);
  EXPECT_EQ(bin_for(1e-9, dt_pm, 8), 8);   // clamped at max depth
  EXPECT_EQ(bin_for(0.0, dt_pm, 8), 8);    // pathological: deepest
}

TEST(TimeBins, ActivitySchedule) {
  // depth 3: bin 0 fires once (s=0), bin 3 fires every fine step.
  const int depth = 3;
  std::array<int, 4> fire_count{};
  for (std::uint64_t s = 0; s < 8; ++s) {
    for (std::uint8_t b = 0; b <= 3; ++b) {
      if (bin_active(b, s, depth)) ++fire_count[b];
    }
  }
  EXPECT_EQ(fire_count[0], 1);
  EXPECT_EQ(fire_count[1], 2);
  EXPECT_EQ(fire_count[2], 4);
  EXPECT_EQ(fire_count[3], 8);
  // Everyone fires at s=0 (synchronization point).
  for (std::uint8_t b = 0; b <= 3; ++b) {
    EXPECT_TRUE(bin_active(b, 0, depth));
  }
}

TEST(TimeBins, AssignBinsReturnsDepth) {
  Particles p;
  for (int i = 0; i < 4; ++i) {
    p.push_back(static_cast<std::uint64_t>(i), Species::kDarkMatter, 0, 0, 0,
                0, 0, 0, 1.0f);
  }
  const std::vector<double> limits{1.0, 0.3, 0.1, 1e30};
  TimeBinConfig config;
  config.max_depth = 6;
  const int depth = assign_bins(p, limits, 1.0, config);
  EXPECT_EQ(p.bin[0], 0);
  EXPECT_EQ(p.bin[1], 2);
  EXPECT_EQ(p.bin[2], 4);
  EXPECT_EQ(p.bin[3], 0);
  EXPECT_EQ(depth, 4);
}

TEST(TimeBins, ActivityMaskMatchesSchedule) {
  Particles p;
  p.push_back(0, Species::kDarkMatter, 0, 0, 0, 0, 0, 0, 1.0f);
  p.push_back(1, Species::kDarkMatter, 0, 0, 0, 0, 0, 0, 1.0f);
  p.bin[0] = 0;
  p.bin[1] = 2;
  std::vector<std::uint8_t> mask;
  activity_mask(p, 1, 2, mask);
  EXPECT_EQ(mask[0], 0);
  EXPECT_EQ(mask[1], 1);
  activity_mask(p, 0, 2, mask);
  EXPECT_EQ(mask[0], 1);
  EXPECT_EQ(mask[1], 1);
}

TEST(TimeBins, AccelCriterionScaling) {
  TimeBinConfig config;
  // dt ~ 1/sqrt(|a|): 4x the acceleration halves the step.
  const double dt1 = accel_timestep(config, 1.0, 1.0, 0.0, 0.0);
  const double dt4 = accel_timestep(config, 1.0, 4.0, 0.0, 0.0);
  EXPECT_NEAR(dt1 / dt4, 2.0, 1e-9);
  EXPECT_TRUE(std::isinf(accel_timestep(config, 1.0, 0.0, 0.0, 0.0)));
}

TEST(TimeBins, ScheduleWorkCountsUpdates) {
  Particles p;
  for (int i = 0; i < 3; ++i) {
    p.push_back(static_cast<std::uint64_t>(i), Species::kDarkMatter, 0, 0, 0,
                0, 0, 0, 1.0f);
  }
  p.bin[0] = 0;
  p.bin[1] = 1;
  p.bin[2] = 3;
  EXPECT_EQ(schedule_work(p, 3), 1u + 2u + 8u);
}

// --- KDK --------------------------------------------------------------------

TEST(Kdk, HubbleDragScalesVelocityExactly) {
  const auto bg = lcdm();
  const Kdk kdk(bg);
  auto p = one_particle(5.0f, 100.0f);
  // No acceleration: v must scale by exactly a0/a1.
  kdk.kick(p, 0.5, 1.0, nullptr, /*with_drag=*/true);
  EXPECT_NEAR(p.vx[0], 50.0f, 1e-3);
}

TEST(Kdk, DragFreeKickAddsAccelerationTimesDt) {
  const auto bg = lcdm();
  const Kdk kdk(bg);
  auto p = one_particle(5.0f, 10.0f);
  p.ax[0] = 2.0f;
  const double dt = kdk.dt_of(0.9, 1.0);
  kdk.kick(p, 0.9, 1.0, nullptr, /*with_drag=*/false);
  EXPECT_NEAR(p.vx[0], 10.0f + 2.0f * dt, 1e-4 * (10.0 + 2.0 * dt));
}

TEST(Kdk, DriftMovesByVOverA) {
  const auto bg = lcdm();
  const Kdk kdk(bg);
  auto p = one_particle(5.0f, 30.0f);
  const double dt = kdk.dt_of(0.99, 1.0);
  kdk.drift(p, 0.99, 1.0, 100.0, nullptr);
  EXPECT_NEAR(p.x[0], 5.0 + 30.0 * dt / 0.995, 1e-4);
}

TEST(Kdk, DriftWrapsOwnedButNotGhosts) {
  const auto bg = lcdm();
  const Kdk kdk(bg);
  Particles p;
  p.push_back(0, Species::kDarkMatter, 9.99f, 1, 1, 1000.0f, 0, 0, 1.0f);
  p.push_back(1, Species::kDarkMatter, 9.99f, 1, 1, 1000.0f, 0, 0, 1.0f);
  p.ghost[1] = 1;
  kdk.drift(p, 0.5, 0.52, 10.0, nullptr);
  EXPECT_LT(p.x[0], 10.0f);      // wrapped
  EXPECT_GT(p.x[1], 10.0f);      // ghost keeps its image coordinate
  EXPECT_NEAR(p.x[1] - 10.0f, p.x[0], 1e-3);
}

TEST(Kdk, ExpansionCoolsGasAdiabatically) {
  const auto bg = lcdm();
  const Kdk kdk(bg);
  auto p = one_particle(5.0f, 0.0f, Species::kGas);
  const float u0 = p.u[0];
  kdk.drift(p, 0.5, 1.0, 100.0, nullptr);
  // u ~ a^{-2} for gamma = 5/3.
  EXPECT_NEAR(p.u[0], u0 * 0.25f, 1e-3 * u0);
}

TEST(Kdk, ExpansionDoesNotTouchDarkMatter) {
  const auto bg = lcdm();
  const Kdk kdk(bg);
  auto p = one_particle(5.0f, 0.0f, Species::kDarkMatter);
  p.u[0] = 7.0f;
  kdk.drift(p, 0.5, 1.0, 100.0, nullptr);
  EXPECT_EQ(p.u[0], 7.0f);
}

TEST(Kdk, EnergyKickAppliesDuAndFloors) {
  const auto bg = lcdm();
  const Kdk kdk(bg);
  auto p = one_particle(5.0f, 0.0f, Species::kGas);
  const double dt = kdk.dt_of(0.9, 1.0);
  p.du[0] = 3.0f;
  const float u0 = p.u[0];
  kdk.energy_kick(p, 0.9, 1.0, nullptr);
  EXPECT_NEAR(p.u[0], u0 + 3.0 * dt, 1e-3);
  // Strong negative du cannot drive u below zero.
  p.du[0] = -1e9f;
  kdk.energy_kick(p, 0.9, 1.0, nullptr);
  EXPECT_GE(p.u[0], 0.0f);
}

TEST(Kdk, ActiveMaskRestrictsUpdates) {
  const auto bg = lcdm();
  const Kdk kdk(bg);
  Particles p;
  p.push_back(0, Species::kDarkMatter, 1, 1, 1, 10.0f, 0, 0, 1.0f);
  p.push_back(1, Species::kDarkMatter, 2, 1, 1, 10.0f, 0, 0, 1.0f);
  std::vector<std::uint8_t> active{1, 0};
  kdk.kick(p, 0.5, 1.0, active.data(), true);
  EXPECT_NEAR(p.vx[0], 5.0f, 1e-4);
  EXPECT_EQ(p.vx[1], 10.0f);
}

TEST(Kdk, FreeParticleLeapfrogConsistency) {
  // Two half-kicks + drift with zero acceleration: pure drag evolution,
  // independent of how the interval is subdivided.
  const auto bg = lcdm();
  const Kdk kdk(bg);
  auto one_step = one_particle(0.0f, 64.0f);
  kdk.kick(one_step, 0.5, 1.0, nullptr, true);

  auto two_steps = one_particle(0.0f, 64.0f);
  kdk.kick(two_steps, 0.5, 0.75, nullptr, true);
  kdk.kick(two_steps, 0.75, 1.0, nullptr, true);
  EXPECT_NEAR(one_step.vx[0], two_steps.vx[0], 1e-3);
}

}  // namespace
}  // namespace crkhacc::integrator
