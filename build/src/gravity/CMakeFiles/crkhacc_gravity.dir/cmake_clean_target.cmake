file(REMOVE_RECURSE
  "libcrkhacc_gravity.a"
)
