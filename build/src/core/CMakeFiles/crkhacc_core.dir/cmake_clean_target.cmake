file(REMOVE_RECURSE
  "libcrkhacc_core.a"
)
