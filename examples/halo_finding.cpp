// In situ clustering analysis on a synthetic "universe".
//
// Builds a toy cosmic-web point set (halos of different richness on a
// filamentary scaffold plus a diffuse background), then runs the same
// GPU-analysis-pipeline algorithms the simulation uses in situ: FOF halo
// finding and DBSCAN, both on the ArborX-analog BVH. Prints the halo
// catalog, the mass function, and a FOF/DBSCAN agreement summary.
//
//   ./examples/halo_finding
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "analysis/dbscan.h"
#include "analysis/fof.h"
#include "analysis/halos.h"
#include "core/particles.h"
#include "util/rng.h"

using namespace crkhacc;

int main() {
  const double box = 50.0;
  SplitMix64 rng(42);
  Particles particles;
  std::uint64_t id = 0;

  // Halos: richness drawn from a power law, placed along a filament.
  const int num_halos = 24;
  std::vector<std::array<double, 3>> centers;
  for (int h = 0; h < num_halos; ++h) {
    const double t = static_cast<double>(h) / num_halos;
    // Filament: a gentle helix through the box.
    const std::array<double, 3> center{
        5.0 + 40.0 * t,
        25.0 + 12.0 * std::sin(6.28 * t) + 2.0 * rng.next_gaussian(),
        25.0 + 12.0 * std::cos(6.28 * t) + 2.0 * rng.next_gaussian()};
    centers.push_back(center);
    const int members =
        20 + static_cast<int>(400.0 * std::pow(rng.next_double(), 3.0));
    const double radius = 0.25 * std::cbrt(members / 20.0);
    for (int m = 0; m < members; ++m) {
      particles.push_back(
          id++, Species::kDarkMatter,
          static_cast<float>(center[0] + radius * rng.next_gaussian()),
          static_cast<float>(center[1] + radius * rng.next_gaussian()),
          static_cast<float>(center[2] + radius * rng.next_gaussian()),
          static_cast<float>(100.0 * rng.next_gaussian()), 0, 0, 0.8f);
    }
  }
  // Diffuse background.
  for (int b = 0; b < 4000; ++b) {
    particles.push_back(id++, Species::kDarkMatter,
                        static_cast<float>(rng.next_double() * box),
                        static_cast<float>(rng.next_double() * box),
                        static_cast<float>(rng.next_double() * box), 0, 0, 0,
                        0.8f);
  }
  std::printf("synthetic universe: %zu particles, %d planted halos\n\n",
              particles.size(), num_halos);

  // --- FOF ------------------------------------------------------------
  const float linking_length = 0.4f;
  const auto groups = analysis::fof(particles.x, particles.y, particles.z,
                                    linking_length, /*min_members=*/16);
  const auto catalog = analysis::halo_catalog(particles, groups, nullptr);
  std::printf("FOF (b = %.2f): %zu halos with >= 16 members\n",
              linking_length, catalog.size());
  std::printf("  %-6s %-10s %-12s %-24s %-8s\n", "rank", "members", "mass",
              "center", "radius");
  for (std::size_t h = 0; h < catalog.size() && h < 10; ++h) {
    const auto& halo = catalog[h];
    std::printf("  %-6zu %-10zu %-12.1f (%5.1f, %5.1f, %5.1f)    %-8.2f\n", h,
                halo.count, halo.mass, halo.center[0], halo.center[1],
                halo.center[2], halo.radius);
  }

  // Mass function.
  const auto counts = analysis::mass_function(catalog, 10.0, 1000.0, 6);
  std::printf("\nmass function (log bins over [10, 1000]):\n");
  for (std::size_t b = 0; b < counts.size(); ++b) {
    const double lo = 10.0 * std::pow(100.0, static_cast<double>(b) / 6.0);
    std::printf("  M in [%7.1f, %7.1f): %zu  ", lo,
                10.0 * std::pow(100.0, static_cast<double>(b + 1) / 6.0),
                counts[b]);
    for (std::size_t star = 0; star < counts[b]; ++star) std::printf("*");
    std::printf("\n");
  }

  // --- DBSCAN -----------------------------------------------------------
  const auto clusters = analysis::dbscan(particles.x, particles.y,
                                         particles.z, linking_length, 8);
  std::size_t noise = 0;
  for (auto c : clusters.cluster_of) noise += (c == analysis::DbscanResult::kNoise);
  std::printf("\nDBSCAN (eps = %.2f, minPts = 8): %zu clusters, %zu noise "
              "points\n",
              linking_length, clusters.num_clusters, noise);

  // Agreement: fraction of FOF-grouped particles that DBSCAN also places
  // in a cluster.
  std::size_t both = 0, fof_only = 0;
  for (std::size_t i = 0; i < particles.size(); ++i) {
    const bool in_fof = groups.group_of[i] != analysis::FofResult::kUngrouped;
    const bool in_dbscan =
        clusters.cluster_of[i] != analysis::DbscanResult::kNoise;
    if (in_fof && in_dbscan) ++both;
    if (in_fof && !in_dbscan) ++fof_only;
  }
  std::printf("FOF/DBSCAN agreement: %.1f%% of FOF members are DBSCAN "
              "cluster members\n",
              100.0 * static_cast<double>(both) /
                  std::max<std::size_t>(1, both + fof_only));

  // Recovery check against the planted halos.
  std::size_t recovered = 0;
  for (const auto& center : centers) {
    for (const auto& halo : catalog) {
      const double dx = halo.center[0] - center[0];
      const double dy = halo.center[1] - center[1];
      const double dz = halo.center[2] - center[2];
      if (dx * dx + dy * dy + dz * dz < 1.0) {
        ++recovered;
        break;
      }
    }
  }
  std::printf("planted-halo recovery: %zu / %d\n", recovered, num_halos);
  return 0;
}
