// Step-phase tracing: hierarchical scoped spans with thread and rank
// attribution.
//
// The paper's capability claims rest on per-phase utilization and load
// balance (the Fig. 6 node-utilization breakdown and the figure-of-merit
// accounting for the Frontier-E run). This recorder provides the timeline
// those numbers come from: every phase of a PM step opens a span, spans
// nest, and each span is stamped with the thread that ran it and the rank
// that owns the recorder.
//
// Hot-path contract:
//   - Recording a span touches only a per-thread single-producer ring
//     buffer: no locks, no allocation, two atomic ops per span close.
//   - Memory is bounded by `buffer_events` per thread. When a ring is
//     full the newest event is dropped and counted; existing events are
//     never corrupted.
//   - When tracing is disabled (or no recorder is installed on the
//     thread), HACC_TRACE_SPAN is a thread-local load and a null check.
//
// Rings are drained by flush(step), which the simulation calls at the
// end of each PM step — a quiescent point where no worker threads are
// emitting. Committed events are tagged with the step index and can be
// exported as Chrome/Perfetto trace_event JSON (chrome://tracing,
// ui.perfetto.dev) or summarized as a per-phase table.
//
// Determinism: span *counts and nesting* on the rank thread depend only
// on the step structure (phases, substep count, kernel passes), never on
// thread count or LaunchSchedule — the golden-trace tests in
// tests/test_trace.cpp pin this. Worker threads may also emit spans
// (each into its own ring); their counts are deterministic whenever the
// emitting loop is (ThreadPool's fixed chunk decomposition).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/timer.h"

namespace crkhacc::util {

struct TraceConfig {
  /// Master switch. Off: spans are no-ops, flush/export are empty, and
  /// the simulation performs no trace-related collectives, so physics
  /// and comm-op counts are bitwise identical to an untraced run.
  bool enabled = false;
  /// Per-thread ring capacity in events. Bounds hot-path memory at
  /// sizeof(event) * buffer_events * threads; overflow drops the newest
  /// event and counts it.
  std::size_t buffer_events = 1 << 15;
  /// Chrome trace_event JSON output path ("" = no file export).
  std::string file;
};

/// One committed (flushed) span.
struct TraceEvent {
  const char* name;        ///< Static phase name (never owned).
  std::uint64_t step;      ///< PM step the span was flushed under.
  std::uint64_t open_seq;  ///< Per-thread span-open order (0-based).
  double start;            ///< Seconds since the recorder's epoch.
  double dur;              ///< Span duration in seconds.
  std::uint32_t tid;       ///< Recorder-local thread index (0 = first).
  std::uint32_t depth;     ///< Nesting depth on the emitting thread.
};

/// Aggregated view of one span name across all committed events.
struct PhaseSummary {
  std::string name;
  std::uint64_t count = 0;
  double total_seconds = 0.0;
  double max_seconds = 0.0;
};

class TraceRecorder {
 public:
  explicit TraceRecorder(TraceConfig config = {});
  ~TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  bool enabled() const { return config_.enabled; }
  const TraceConfig& config() const { return config_; }

  /// Rank stamped into exported events (`pid` in Chrome JSON).
  void set_rank(int rank) { rank_ = rank; }
  int rank() const { return rank_; }

  /// Recorder installed on the current thread (null = tracing off here).
  static TraceRecorder* current();

  /// RAII: install `rec` as the current thread's recorder. Pass null to
  /// force spans off for the scope. Restores the previous recorder on
  /// destruction; nests.
  class Context {
   public:
    explicit Context(TraceRecorder* rec);
    ~Context();
    Context(const Context&) = delete;
    Context& operator=(const Context&) = delete;

   private:
    TraceRecorder* prev_;
  };

  struct ThreadLog;  // opaque per-thread ring

  /// RAII span. Opens on construction, records on destruction (or
  /// close()). Default-constructed and moved-from spans are inert.
  /// Spans must close in LIFO order per thread (i.e. be scoped).
  class Span {
   public:
    Span() = default;
    Span(TraceRecorder* rec, const char* name);
    Span(Span&& other) noexcept;
    Span& operator=(Span&& other) noexcept;
    ~Span() { close(); }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    void close();

   private:
    TraceRecorder* rec_ = nullptr;
    ThreadLog* log_ = nullptr;
    const char* name_ = nullptr;
    double t0_ = 0.0;
    std::uint64_t open_seq_ = 0;
    std::uint32_t depth_ = 0;
  };

  /// Open a span on the calling thread without going through the
  /// thread-local context (worker threads in tests, ad-hoc callers).
  Span span(const char* name) { return Span(this, name); }

  /// Drain every thread's ring into the committed store, tagging events
  /// with `step`. Call at quiescent points (end of a PM step); safe to
  /// run concurrently with producers, but spans still open at flush
  /// time land in the *next* flush.
  void flush(std::uint64_t step);

  /// Committed events, in flush order (per flush: by tid, then open_seq).
  const std::vector<TraceEvent>& events() const { return committed_; }
  std::uint64_t events_recorded() const { return committed_.size(); }
  /// Total events dropped to ring overflow across all threads.
  std::uint64_t events_dropped() const;
  /// Number of distinct threads that have emitted at least one span.
  std::size_t threads_seen() const;

  /// Sum of committed durations for `name`; all steps, or one step.
  double total_seconds(const char* name) const;
  double step_seconds(std::uint64_t step, const char* name) const;

  /// Per-name aggregation over all committed events, sorted by
  /// descending total time (ties by name).
  std::vector<PhaseSummary> summary() const;
  /// Human-readable per-phase table of summary().
  std::string summary_table() const;

  /// Chrome trace_event objects for this rank, comma-joined (no
  /// enclosing brackets) — one fragment per rank, composable across
  /// ranks with chrome_json_document().
  std::string chrome_events_fragment() const;
  /// Wrap rank fragments into a complete Chrome JSON document.
  static std::string chrome_json_document(
      const std::vector<std::string>& fragments);
  /// Write this rank's events as a standalone Chrome JSON file.
  bool export_chrome_json(const std::string& path) const;

 private:
  ThreadLog* local_log();

  TraceConfig config_;
  int rank_ = 0;
  std::uint64_t id_ = 0;  ///< Process-unique, validates the TLS cache.
  Stopwatch epoch_;

  mutable std::mutex register_mutex_;  ///< Guards logs_ growth only.
  std::vector<std::unique_ptr<ThreadLog>> logs_;

  std::vector<TraceEvent> committed_;
  /// (step, [begin,end) into committed_) per flush, for step_seconds().
  std::vector<std::pair<std::uint64_t, std::pair<std::size_t, std::size_t>>>
      step_ranges_;

  friend class Span;
};

}  // namespace crkhacc::util

#define HACC_TRACE_CONCAT2(a, b) a##b
#define HACC_TRACE_CONCAT(a, b) HACC_TRACE_CONCAT2(a, b)

/// Scoped span on the current thread's recorder; no-op when none is
/// installed. `name` must be a string literal (or otherwise outlive the
/// recorder).
#define HACC_TRACE_SPAN(name)                                        \
  ::crkhacc::util::TraceRecorder::Span HACC_TRACE_CONCAT(            \
      hacc_trace_span_, __LINE__)(                                   \
      ::crkhacc::util::TraceRecorder::current(), (name))
