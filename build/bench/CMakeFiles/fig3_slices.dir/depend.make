# Empty dependencies file for fig3_slices.
# This may be replaced when dependencies are built.
