#include "io/storage.h"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include "util/assertions.h"

namespace crkhacc::io {
namespace {

namespace fs = std::filesystem;

double monotonic_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ThrottledStore::ThrottledStore(const StoreConfig& config) : config_(config) {
  CHECK(!config.root.empty());
  fs::create_directories(config.root);
}

std::string ThrottledStore::full_path(const std::string& rel_path) const {
  return (fs::path(config_.root) / rel_path).string();
}

double ThrottledStore::occupy_channel(std::uint64_t bytes,
                                      double already_spent) {
  if (config_.bandwidth_bytes_per_s <= 0.0 && config_.latency_s <= 0.0) {
    return 0.0;
  }
  const double service = std::max(
      0.0, config_.latency_s +
               (config_.bandwidth_bytes_per_s > 0.0
                    ? static_cast<double>(bytes) / config_.bandwidth_bytes_per_s
                    : 0.0) -
               already_spent);
  double wait_until;
  if (config_.shared_channel) {
    std::lock_guard<std::mutex> lock(channel_mutex_);
    const double now = monotonic_seconds();
    const double start = std::max(now, channel_available_at_);
    channel_available_at_ = start + service;
    wait_until = channel_available_at_;
  } else {
    wait_until = monotonic_seconds() + service;
  }
  const double now = monotonic_seconds();
  if (wait_until > now) {
    std::this_thread::sleep_for(std::chrono::duration<double>(wait_until - now));
  }
  return service;
}

double ThrottledStore::write(const std::string& rel_path,
                             const std::vector<std::uint8_t>& data) {
  const double start = monotonic_seconds();
  const auto path = fs::path(full_path(rel_path));
  fs::create_directories(path.parent_path());
  {
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    CHECK_MSG(static_cast<bool>(file), "cannot open store file for write");
    file.write(reinterpret_cast<const char*>(data.data()),
               static_cast<std::streamsize>(data.size()));
    CHECK_MSG(static_cast<bool>(file), "store write failed");
  }
  occupy_channel(data.size(), monotonic_seconds() - start);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    bytes_written_ += data.size();
  }
  return monotonic_seconds() - start;
}

bool ThrottledStore::read(const std::string& rel_path,
                          std::vector<std::uint8_t>& out) {
  const double start = monotonic_seconds();
  std::ifstream file(full_path(rel_path), std::ios::binary | std::ios::ate);
  if (!file) return false;
  const auto size = static_cast<std::size_t>(file.tellg());
  file.seekg(0);
  out.resize(size);
  file.read(reinterpret_cast<char*>(out.data()),
            static_cast<std::streamsize>(size));
  if (!file) return false;
  occupy_channel(size, monotonic_seconds() - start);
  return true;
}

double ThrottledStore::ingest(ThrottledStore& from,
                              const std::string& rel_path) {
  const double start = monotonic_seconds();
  const auto src = fs::path(from.full_path(rel_path));
  if (!fs::exists(src)) return 0.0;
  const auto dst = fs::path(full_path(rel_path));
  fs::create_directories(dst.parent_path());
  const auto size = static_cast<std::uint64_t>(fs::file_size(src));
  fs::rename(src, dst);  // the low-level OS move
  occupy_channel(size, monotonic_seconds() - start);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    bytes_written_ += size;
  }
  return monotonic_seconds() - start;
}

bool ThrottledStore::exists(const std::string& rel_path) const {
  return fs::exists(full_path(rel_path));
}

void ThrottledStore::remove(const std::string& rel_path) {
  std::error_code ec;
  fs::remove(full_path(rel_path), ec);
}

std::vector<std::string> ThrottledStore::list(const std::string& rel_dir) const {
  std::vector<std::string> out;
  const auto dir = fs::path(config_.root) / rel_dir;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file()) {
      out.push_back(entry.path().filename().string());
    }
  }
  return out;
}

}  // namespace crkhacc::io
