file(REMOVE_RECURSE
  "CMakeFiles/fig5_time_to_solution.dir/fig5_time_to_solution.cpp.o"
  "CMakeFiles/fig5_time_to_solution.dir/fig5_time_to_solution.cpp.o.d"
  "fig5_time_to_solution"
  "fig5_time_to_solution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_time_to_solution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
