// Unified metrics: named counters and gauges with deterministic merge.
//
// The paper reports figure-of-merit numbers that combine wall-clock
// timers, FLOP counts, and distribution statistics from every rank
// (Table I, Fig. 5/6). This registry is the single funnel those numbers
// flow through: the existing TimerRegistry / FlopRegistry / Histogram /
// TraceRecorder instruments ingest into named metrics, and a collective
// reduce() produces one registry whose contents are identical on every
// rank and independent of merge order.
//
// Two kinds:
//   - counter: a running sum (seconds, flops, events). merge/reduce add.
//   - gauge: an observed quantity (utilization, imbalance). merge/reduce
//     keep min/max and the exact sample mean (sum + samples), which are
//     all commutative — merge order cannot change the result.
//
// Thread model: like TimerRegistry, a MetricsRegistry is single-threaded
// by design. Threaded producers fill one registry per worker and fold
// them with merge() on the calling thread; determinism tests pin that
// the fold is order-independent.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "gpu/device.h"
#include "util/histogram.h"
#include "util/timer.h"
#include "util/trace.h"

namespace crkhacc::comm {
class Communicator;
}

namespace crkhacc::core {

enum class MetricKind : std::uint8_t { kCounter, kGauge };

struct MetricValue {
  MetricKind kind = MetricKind::kCounter;
  double total = 0.0;          ///< Counter: running sum. Gauge: sum of samples.
  double min = 0.0;            ///< Gauge: smallest sample seen.
  double max = 0.0;            ///< Gauge: largest sample seen.
  std::uint64_t samples = 0;   ///< Observations folded in.

  double mean() const {
    return samples > 0 ? total / static_cast<double>(samples) : 0.0;
  }
};

class MetricsRegistry {
 public:
  /// Add `delta` to counter `name` (created on first use).
  void add(const std::string& name, double delta);
  /// Record one observation of gauge `name`.
  void observe(const std::string& name, double value);

  /// Metric by name, or null. value(name) is total for counters.
  const MetricValue* find(const std::string& name) const;
  double value(const std::string& name) const;
  std::size_t size() const { return metrics_.size(); }
  bool empty() const { return metrics_.empty(); }

  /// (name, value) pairs in name order — the canonical iteration order
  /// every export and reduction uses.
  std::vector<std::pair<std::string, MetricValue>> sorted() const;

  /// Fold `other` into this registry. Counters add; gauges combine
  /// min/max/sum/samples. All ops are commutative and associative, so
  /// any merge order yields the same registry.
  void merge(const MetricsRegistry& other);

  /// Ingest adapters for the existing instruments.
  void ingest_timers(const TimerRegistry& timers,
                     const std::string& prefix = "time/");
  void ingest_flops(const gpu::FlopRegistry& flops,
                    const std::string& prefix = "flops/");
  void ingest_histogram(const std::string& name, const Histogram& hist);
  void ingest_trace(const util::TraceRecorder& trace,
                    const std::string& prefix = "trace/");

  /// Collective: reduce across all ranks of `comm`. The result holds the
  /// union of every rank's metric names; counters are summed, gauges
  /// combine min/max/sum/samples. Every rank returns an identical
  /// registry. Metric kinds must agree across ranks for shared names.
  MetricsRegistry reduce(comm::Communicator& comm) const;

  /// Human-readable table, one metric per row, name order.
  std::string table() const;

  void clear() { metrics_.clear(); }

 private:
  std::map<std::string, MetricValue> metrics_;
};

}  // namespace crkhacc::core
