// Trace-overhead gate: tracing must observe the step, never perturb it.
//
// The observability subsystem (util/trace.h) promises two things the
// tests cannot time: a traced PM step costs < 2% extra wall time, and a
// tracing-compiled-but-disabled build costs nothing measurable. This
// bench drives the full Simulation step pipeline (hydro + gravity +
// subgrid) with tracing off and on and gates:
//
//   1. determinism — particle-state checksums bitwise identical between
//      the traced and untraced runs (spans and trace collectives must
//      not touch physics or its comm schedule);
//   2. overhead — interleaved per-step timing, traced vs untraced, with
//      the minimum-over-reps total under 1.02x (full mode only: the
//      timing gate needs a quiet machine, so --quick reports the ratio
//      without gating it);
//   3. disabled cost — a micro-benchmark of HACC_TRACE_SPAN with no
//      recorder installed and with a disabled recorder installed, gated
//      at < 100 ns/span (measured ~2-5 ns: one TLS load + null check).
//
// --quick gates (1) and (3) and runs as the trace_overhead_smoke ctest
// target, so a hot-path regression fails the build.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "comm/world.h"
#include "common.h"
#include "core/simulation.h"
#include "util/crc32.h"
#include "util/timer.h"
#include "util/trace.h"

using namespace crkhacc;

namespace {

core::SimConfig bench_config(bool quick) {
  core::SimConfig config;
  config.np = 8;
  config.box = 24.0;
  config.ng = 16;
  config.z_init = 20.0;
  config.z_final = quick ? 14.0 : 8.0;
  config.num_pm_steps = quick ? 2 : 6;
  config.hydro = true;
  config.subgrid_on = true;
  config.bins.max_depth = 2;
  config.threads = 1;  // single lane: least timing noise for the gate
  config.seed = 99;
  return config;
}

std::uint32_t state_checksum(const Particles& p) {
  std::uint32_t crc = 0;
  auto fold = [&](const std::vector<float>& v) {
    crc = crc32(v.data(), v.size() * sizeof(float), crc);
  };
  fold(p.x);
  fold(p.y);
  fold(p.z);
  fold(p.vx);
  fold(p.vy);
  fold(p.vz);
  fold(p.u);
  return crc;
}

struct RunSample {
  std::uint32_t checksum = 0;
  std::vector<double> step_seconds;  ///< per PM step
  std::uint64_t trace_events = 0;
};

RunSample run_sim(const core::SimConfig& config) {
  RunSample sample;
  comm::World world(1);
  world.run([&](comm::Communicator& comm) {
    core::SimContext ctx(config.threads);
    core::Simulation sim(ctx, comm, config);
    sim.initialize();
    for (int s = 0; s < config.num_pm_steps; ++s) {
      Stopwatch watch;
      (void)sim.step();
      sample.step_seconds.push_back(watch.seconds());
    }
    sample.checksum = state_checksum(sim.particles());
    sample.trace_events = sim.trace().events_recorded();
  });
  return sample;
}

/// ns per HACC_TRACE_SPAN when it must do nothing. `rec` is null for the
/// no-recorder path or a disabled recorder for the installed-but-off
/// path. The span name goes through a volatile pointer so the macro body
/// cannot be folded away.
double disabled_span_ns(util::TraceRecorder* rec, std::size_t iters) {
  util::TraceRecorder::Context ctx(rec);
  const char* volatile name = "noop";
  Stopwatch watch;
  for (std::size_t i = 0; i < iters; ++i) {
    HACC_TRACE_SPAN(name);
  }
  return watch.seconds() / static_cast<double>(iters) * 1e9;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  bench::print_header(std::string("Trace-overhead gate — tracing on vs off") +
                      (quick ? " (--quick)" : ""));

  auto config = bench_config(quick);
  const int reps = quick ? 1 : 3;

  // Interleave traced/untraced runs so drift in machine load hits both
  // sides; keep the minimum total per side (robust against noise spikes).
  double best_off = -1.0, best_on = -1.0;
  std::uint32_t crc_off = 0, crc_on = 0;
  std::uint64_t traced_events = 0;
  for (int rep = 0; rep < reps; ++rep) {
    config.trace.enabled = false;
    const auto off = run_sim(config);
    config.trace.enabled = true;
    const auto on = run_sim(config);
    const double total_off =
        std::accumulate(off.step_seconds.begin(), off.step_seconds.end(), 0.0);
    const double total_on =
        std::accumulate(on.step_seconds.begin(), on.step_seconds.end(), 0.0);
    if (best_off < 0.0 || total_off < best_off) best_off = total_off;
    if (best_on < 0.0 || total_on < best_on) best_on = total_on;
    crc_off = off.checksum;
    crc_on = on.checksum;
    traced_events = on.trace_events;
    std::printf("rep %d: %d steps untraced %.3fs, traced %.3fs "
                "(%llu events)\n",
                rep, config.num_pm_steps, total_off, total_on,
                static_cast<unsigned long long>(on.trace_events));
  }

  const bool deterministic = crc_off == crc_on;
  const double ratio = best_off > 0.0 ? best_on / best_off : 1.0;
  std::printf("\ndeterminism: untraced %08x vs traced %08x  %s\n", crc_off,
              crc_on, deterministic ? "OK" : "MISMATCH");
  std::printf("overhead: min traced/untraced = %.4f (%+.2f%%), "
              "%.1f events/step\n",
              ratio, (ratio - 1.0) * 100.0,
              static_cast<double>(traced_events) / config.num_pm_steps);

  // Disabled-span micro-benchmark: no recorder, then a compiled-in but
  // disabled recorder — both must stay in single-digit-nanosecond land.
  const std::size_t iters = quick ? 2'000'000 : 20'000'000;
  const double ns_null = disabled_span_ns(nullptr, iters);
  util::TraceRecorder off_recorder;  // default config: disabled
  const double ns_off = disabled_span_ns(&off_recorder, iters);
  std::printf("disabled span: %.2f ns (no recorder), %.2f ns "
              "(recorder installed, tracing off)\n",
              ns_null, ns_off);

  const bool disabled_ok = ns_null < 100.0 && ns_off < 100.0;
  bool ok = deterministic && disabled_ok;
  std::printf("\ngates: determinism %s, disabled-span<100ns %s",
              deterministic ? "PASS" : "FAIL", disabled_ok ? "PASS" : "FAIL");
  if (!quick) {
    const bool overhead_ok = ratio < 1.02;
    std::printf(", overhead<2%% %s", overhead_ok ? "PASS" : "FAIL");
    ok = ok && overhead_ok;
  }
  std::printf("\n");

  std::printf(
      "\nJSON: {\"bench\": \"trace_overhead\", \"quick\": %s, "
      "\"overhead_ratio\": %.4f, \"disabled_span_ns\": %.2f, "
      "\"disabled_span_installed_ns\": %.2f, \"events_per_step\": %.1f, "
      "\"deterministic\": %s}\n",
      quick ? "true" : "false", ratio, ns_null, ns_off,
      static_cast<double>(traced_events) / config.num_pm_steps,
      deterministic ? "true" : "false");
  return ok ? 0 : 1;
}
