// Serial FFTs: iterative radix-2 for power-of-two lengths plus Bluestein's
// chirp-z algorithm for arbitrary lengths, and 3-D transforms built on the
// 1-D core.
//
// This is the single-node kernel underneath the distributed SWFFT-analog
// (fft/distributed_fft.h). The spectral long-range gravity solve needs
// FP64 throughout — the paper runs its FFT stack in double precision to
// preserve spectral accuracy while the short-range solver runs FP32.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace crkhacc::fft {

using Complex = std::complex<double>;

/// In-place forward (inverse=false) or inverse (inverse=true) DFT of
/// length n = data.size(). Arbitrary n >= 1; power-of-two sizes take the
/// radix-2 path, others Bluestein. The inverse includes the 1/n factor, so
/// fft(inverse(x)) == x.
void transform(std::vector<Complex>& data, bool inverse);

/// In-place transform of a strided line within a larger array.
void transform_line(Complex* base, std::size_t n, std::size_t stride, bool inverse);

/// True if n is a power of two (and > 0).
bool is_pow2(std::size_t n);

/// Smallest power of two >= n.
std::size_t next_pow2(std::size_t n);

/// 3-D in-place transform of an nx*ny*nz array stored x-fastest:
/// data[(z*ny + y)*nx + x]. Inverse includes the full 1/(nx*ny*nz) factor.
void transform_3d(std::vector<Complex>& data, std::size_t nx, std::size_t ny,
                  std::size_t nz, bool inverse);

/// Plan-cache accounting. Transforms acquire immutable plans (per-stage
/// twiddle tables for radix-2 lengths; chirp + pre-transformed
/// convolution kernel for Bluestein lengths) from a process-wide cache
/// keyed on (length, direction). Plans are built once and shared by
/// every Simulation / SimContext in the process; the tables are
/// generated with the exact recurrence the uncached loop used, so cached
/// and uncached transforms are bitwise identical.
struct PlanCacheStats {
  std::uint64_t hits = 0;    ///< transforms served by an existing plan
  std::uint64_t misses = 0;  ///< plans built (one per distinct key)
};

/// Snapshot of the process-wide plan-cache counters.
PlanCacheStats plan_cache_stats();

/// Reset the counters (tests / benches). The cached plans themselves are
/// kept — only the accounting restarts.
void reset_plan_cache_stats();

}  // namespace crkhacc::fft
