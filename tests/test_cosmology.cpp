// Tests for background cosmology, the power spectrum, and the Zel'dovich
// initial-conditions generator.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <mutex>

#include "comm/world.h"
#include "cosmology/background.h"
#include "cosmology/ics.h"
#include "cosmology/power.h"
#include "cosmology/units.h"

namespace crkhacc::cosmo {
namespace {

Parameters lcdm() { return Parameters{}; }

Parameters einstein_de_sitter() {
  Parameters p;
  p.omega_m = 1.0;
  p.omega_b = 0.05;
  p.omega_l = 0.0;
  return p;
}

TEST(Background, HubbleNormalizedToday) {
  const Background bg(lcdm());
  EXPECT_NEAR(bg.E(1.0), 1.0, 1e-12);
  EXPECT_NEAR(bg.hubble(1.0), units::kH0, 1e-9);
}

TEST(Background, MatterDominatesEarly) {
  const Background bg(lcdm());
  EXPECT_NEAR(bg.omega_m_at(0.01), 1.0, 0.01);
  EXPECT_NEAR(bg.omega_m_at(1.0), lcdm().omega_m, 1e-10);
}

TEST(Background, EdsTimeIsAnalytic) {
  // Einstein-de Sitter: t(a) = (2/3) a^{3/2} / H0.
  const Background bg(einstein_de_sitter());
  for (double a : {0.1, 0.5, 1.0}) {
    const double expected = (2.0 / 3.0) * std::pow(a, 1.5) / units::kH0;
    EXPECT_NEAR(bg.time_of(a), expected, 1e-4 * expected);
  }
}

TEST(Background, TimeIsMonotonic) {
  const Background bg(lcdm());
  double prev = 0.0;
  for (double a = 0.05; a <= 1.0; a += 0.05) {
    const double t = bg.time_of(a);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(Background, GrowthNormalizedAndEdsLinear) {
  const Background lcdm_bg(lcdm());
  EXPECT_NEAR(lcdm_bg.growth(1.0), 1.0, 1e-10);
  // EdS: D(a) = a exactly.
  const Background eds(einstein_de_sitter());
  for (double a : {0.1, 0.3, 0.7}) {
    EXPECT_NEAR(eds.growth(a), a, 2e-3);
  }
}

TEST(Background, GrowthSuppressedByDarkEnergy) {
  // At fixed early normalization, LCDM growth lags EdS at late times:
  // D_lcdm(0.5)/D_lcdm(1) > 0.5 (growth slows once Lambda dominates).
  const Background bg(lcdm());
  EXPECT_GT(bg.growth(0.5), 0.5);
}

TEST(Background, GrowthRateMatchesOmegaPower) {
  // f(a) ~ Omega_m(a)^0.55 for LCDM.
  const Background bg(lcdm());
  for (double a : {0.3, 0.5, 1.0}) {
    const double expected = std::pow(bg.omega_m_at(a), 0.55);
    EXPECT_NEAR(bg.growth_rate(a), expected, 0.02);
  }
}

TEST(Background, RedshiftConversions) {
  EXPECT_DOUBLE_EQ(Background::a_of_z(0.0), 1.0);
  EXPECT_DOUBLE_EQ(Background::a_of_z(1.0), 0.5);
  EXPECT_NEAR(Background::z_of_a(0.25), 3.0, 1e-12);
}

// --- power spectrum ----------------------------------------------------------

TEST(PowerSpectrum, Sigma8MatchesNormalization) {
  const Parameters params = lcdm();
  const PowerSpectrum power(params);
  EXPECT_NEAR(power.sigma(8.0), params.sigma8, 1e-3);
}

TEST(PowerSpectrum, TransferApproachesUnityAtLargeScales) {
  const PowerSpectrum power(lcdm());
  EXPECT_NEAR(power.transfer(1e-5), 1.0, 1e-3);
}

TEST(PowerSpectrum, TransferDecreasesMonotonically) {
  const PowerSpectrum power(lcdm());
  double prev = 2.0;
  for (double k = 1e-4; k < 100.0; k *= 2.0) {
    const double t = power.transfer(k);
    EXPECT_LT(t, prev);
    prev = t;
  }
}

TEST(PowerSpectrum, HasTurnoverShape) {
  const PowerSpectrum power(lcdm());
  // P(k) rises as ~k^ns at low k, falls at high k; the peak is near
  // k_eq ~ 0.01-0.02 h/Mpc.
  EXPECT_LT(power(1e-4), power(0.015));
  EXPECT_GT(power(0.015), power(10.0));
}

TEST(PowerSpectrum, MoreBaryonsSuppressSmallScales) {
  Parameters high_b = lcdm();
  high_b.omega_b = 0.10;
  const PowerSpectrum base(lcdm());
  const PowerSpectrum suppressed(high_b);
  // Compare raw transfer functions (normalization differs).
  EXPECT_LT(suppressed.transfer(1.0), base.transfer(1.0));
}

// --- initial conditions --------------------------------------------------------

TEST(InitialConditions, ParticleCountAndSpecies) {
  comm::World world(1);
  world.run([](comm::Communicator& comm) {
    const Background bg(lcdm());
    const PowerSpectrum power(lcdm());
    IcConfig config;
    config.np = 8;
    config.box = 32.0;
    auto particles = generate_zeldovich(comm, bg, power, config);
    EXPECT_EQ(particles.size(), 2u * 8 * 8 * 8);
    std::size_t gas = 0;
    for (std::size_t i = 0; i < particles.size(); ++i) {
      if (particles.is_gas(i)) ++gas;
    }
    EXPECT_EQ(gas, 8u * 8 * 8);
  });
}

TEST(InitialConditions, MassesMatchCosmicBudget) {
  comm::World world(1);
  world.run([](comm::Communicator& comm) {
    const Background bg(lcdm());
    const PowerSpectrum power(lcdm());
    IcConfig config;
    config.np = 8;
    config.box = 32.0;
    auto particles = generate_zeldovich(comm, bg, power, config);
    double total = 0.0, gas_mass = 0.0;
    for (std::size_t i = 0; i < particles.size(); ++i) {
      total += particles.mass[i];
      if (particles.is_gas(i)) gas_mass += particles.mass[i];
    }
    const double expected =
        bg.mean_matter_density() * config.box * config.box * config.box;
    EXPECT_NEAR(total, expected, 1e-3 * expected);
    EXPECT_NEAR(gas_mass / total, lcdm().omega_b / lcdm().omega_m, 1e-3);
  });
}

TEST(InitialConditions, PositionsInsideBoxAndPerturbed) {
  comm::World world(1);
  world.run([](comm::Communicator& comm) {
    const Background bg(lcdm());
    const PowerSpectrum power(lcdm());
    IcConfig config;
    config.np = 16;
    config.box = 64.0;
    auto particles = generate_zeldovich(comm, bg, power, config);
    double max_speed = 0.0;
    for (std::size_t i = 0; i < particles.size(); ++i) {
      ASSERT_GE(particles.x[i], 0.0f);
      ASSERT_LT(particles.x[i], 64.0f);
      ASSERT_GE(particles.z[i], 0.0f);
      ASSERT_LT(particles.z[i], 64.0f);
      max_speed = std::max(max_speed, std::abs(static_cast<double>(particles.vx[i])));
    }
    EXPECT_GT(max_speed, 0.0);   // actually perturbed
    EXPECT_LT(max_speed, 500.0);  // but not absurdly (z=50 peculiar flows)
  });
}

TEST(InitialConditions, VelocityProportionalToDisplacement) {
  // Zel'dovich: v = a H f * (x - q); recover the proportionality from the
  // emitted particles (dm only, displacement from its lattice site).
  comm::World world(1);
  world.run([](comm::Communicator& comm) {
    const Background bg(lcdm());
    const PowerSpectrum power(lcdm());
    IcConfig config;
    config.np = 8;
    config.box = 32.0;
    config.with_baryons = false;
    auto particles = generate_zeldovich(comm, bg, power, config);
    const double a = Background::a_of_z(config.z_init);
    const double factor = a * bg.hubble(a) * bg.growth_rate(a);
    const std::size_t n = config.np;
    const double cell = config.box / static_cast<double>(n);
    for (std::size_t i = 0; i < particles.size(); i += 17) {
      const std::uint64_t id = particles.id[i];
      const std::size_t ix = id % n;
      const double qx = (static_cast<double>(ix) + 0.5) * cell;
      double dx = particles.x[i] - qx;
      if (dx > 16.0) dx -= 32.0;
      if (dx < -16.0) dx += 32.0;
      EXPECT_NEAR(particles.vx[i], factor * dx, 2e-2 * std::abs(factor * dx) + 1e-3);
    }
  });
}

TEST(InitialConditions, RealizationIndependentOfRankCount) {
  const Background bg(lcdm());
  const PowerSpectrum power(lcdm());
  IcConfig config;
  config.np = 8;
  config.box = 32.0;

  auto collect = [&](int ranks) {
    std::vector<std::pair<std::uint64_t, std::array<float, 6>>> all;
    std::mutex mutex;
    comm::World world(ranks);
    world.run([&](comm::Communicator& comm) {
      auto particles = generate_zeldovich(comm, bg, power, config);
      std::lock_guard<std::mutex> lock(mutex);
      for (std::size_t i = 0; i < particles.size(); ++i) {
        all.emplace_back(particles.id[i],
                         std::array<float, 6>{particles.x[i], particles.y[i],
                                              particles.z[i], particles.vx[i],
                                              particles.vy[i], particles.vz[i]});
      }
    });
    std::sort(all.begin(), all.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return all;
  };

  const auto serial = collect(1);
  const auto parallel = collect(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].first, parallel[i].first);
    for (int d = 0; d < 6; ++d) {
      ASSERT_NEAR(serial[i].second[d], parallel[i].second[d], 1e-4)
          << "particle " << serial[i].first << " component " << d;
    }
  }
}

TEST(InitialConditions, RmsDisplacementIsReasonable) {
  const Background bg(lcdm());
  const PowerSpectrum power(lcdm());
  IcConfig config;
  config.np = 16;
  config.box = 64.0;
  const double rms = zeldovich_rms_displacement(bg, power, config);
  // At z=50 the rms displacement is a small fraction of the 4 Mpc/h cell.
  EXPECT_GT(rms, 0.001);
  EXPECT_LT(rms, 4.0);
}

TEST(Units, TemperatureConversionRoundTrips) {
  const double u = 150.0;  // (km/s)^2
  const double t = units::temperature_K(u, units::kMuIonized);
  EXPECT_NEAR(units::internal_energy(t, units::kMuIonized), u, 1e-9);
  EXPECT_GT(t, 0.0);
}

TEST(Units, CriticalDensityConsistentWithG) {
  // rho_crit = 3 H0^2 / (8 pi G) in code units.
  const double rho = 3.0 * units::kH0 * units::kH0 /
                     (8.0 * M_PI * units::kGravity);
  EXPECT_NEAR(rho, units::kRhoCrit0, 1e-3 * units::kRhoCrit0);
}

}  // namespace
}  // namespace crkhacc::cosmo
