// Conservative Reproducing Kernel (CRK) corrections.
//
// CRKSPH replaces the bare SPH kernel with a linearly-corrected
// interpolant
//
//   W^R_i(x_j) = A_i [ 1 + B_i . (x_i - x_j) ] W(|x_i - x_j|, h)
//
// whose coefficients are chosen so constant and linear fields are
// reproduced exactly:
//
//   B_i = +m2_i^{-1} m1_i,    A_i = 1 / (m0_i - m1_i . m2_i^{-1} m1_i)
//
// from the moments (d = x_j - x_i, V_j = m_j / rho_j):
//
//   m0 = sum_j V_j W_ij,  m1 = sum_j V_j d W_ij,  m2 = sum_j V_j d d^T W_ij.
//
// The moment accumulation is a pair kernel (sph/pair_kernels.h); the 3x3
// solve below is the per-particle "correction coefficient" kernel — the
// highest FP32-throughput kernel in CRK-HACC, used for the paper's peak
// FLOP measurements (Section V-B).
#pragma once

#include <array>

#include "gpu/simd.h"

namespace crkhacc::sph {

/// Accumulated geometric moments for one particle. m2 is symmetric,
/// stored as (xx, yy, zz, xy, xz, yz).
struct CrkMoments {
  float m0 = 0.0f;
  std::array<float, 3> m1{0.0f, 0.0f, 0.0f};
  std::array<float, 6> m2{0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f};
};

/// Correction coefficients.
struct CrkCoefficients {
  float a = 1.0f;                          ///< A_i (falls back to 1/m0)
  std::array<float, 3> b{0.0f, 0.0f, 0.0f};  ///< B_i (falls back to 0)
};

/// Solve the linear-order correction from accumulated moments. Degenerate
/// neighborhoods (singular m2, e.g. isolated or coplanar particles) fall
/// back to the zeroth-order correction A = 1/m0, B = 0, which still
/// reproduces constants. Analytic FLOP count: kSolveFlops per call.
CrkCoefficients solve_crk(const CrkMoments& moments);

/// FP32 operation count of one solve_crk call (FMA = 2), for the device
/// utilization accounting.
inline constexpr double kSolveFlops = 120.0;

/// Corrected kernel value W^R given bare kernel value w and d = x_i - x_j.
inline float corrected_w(const CrkCoefficients& c, float w,
                         const std::array<float, 3>& d) {
  return c.a * (1.0f + c.b[0] * d[0] + c.b[1] * d[1] + c.b[2] * d[2]) * w;
}

/// Gradient (w.r.t. x_i) of the corrected kernel, given the bare kernel
/// value w, its radial derivative dw/dr, the separation d = x_i - x_j and
/// r = |d|. (A, B are held fixed: first-order-correct gradient; the
/// conservative pair force symmetrizes over i and j so conservation does
/// not depend on this.)
inline std::array<float, 3> corrected_grad(const CrkCoefficients& c, float w,
                                           float dw_dr,
                                           const std::array<float, 3>& d,
                                           float r) {
  const float lin = 1.0f + c.b[0] * d[0] + c.b[1] * d[1] + c.b[2] * d[2];
  const float radial = (r > 1e-20f) ? c.a * lin * dw_dr / r : 0.0f;
  return {c.a * c.b[0] * w + radial * d[0],
          c.a * c.b[1] * w + radial * d[1],
          c.a * c.b[2] * w + radial * d[2]};
}

/// One vector lane-set of corrected-gradient components.
struct CorrectedGradV {
  gpu::simd::vfloat x, y, z;
};

/// Vector twin of corrected_grad for the kSimd momentum kernel: the same
/// per-lane expression DAG (the r > 1e-20 guard becomes a select; a*b+c
/// sites go through Math::madd so ExactMath reproduces the scalar bits
/// and FusedMath uses real FMA). Keep in lockstep with corrected_grad.
template <typename Math>
inline CorrectedGradV corrected_grad_v(
    gpu::simd::vfloat a, gpu::simd::vfloat bx, gpu::simd::vfloat by,
    gpu::simd::vfloat bz, gpu::simd::vfloat w, gpu::simd::vfloat dw_dr,
    gpu::simd::vfloat dx, gpu::simd::vfloat dy, gpu::simd::vfloat dz,
    gpu::simd::vfloat r) {
  namespace v = gpu::simd;
  const v::vfloat lin = Math::madd(
      bz, dz, Math::madd(by, dy, Math::madd(bx, dx, v::broadcast(1.0f))));
  const v::vfloat radial = v::select(v::cmp_gt(r, v::broadcast(1e-20f)),
                                     a * lin * dw_dr / r, v::vzero());
  return {Math::madd(radial, dx, a * bx * w),
          Math::madd(radial, dy, a * by * w),
          Math::madd(radial, dz, a * bz * w)};
}

}  // namespace crkhacc::sph
