#include "analysis/power_spectrum.h"

#include <cmath>
#include <numbers>

namespace crkhacc::analysis {

PowerSpectrumResult measure_power(comm::Communicator& comm, mesh::PMSolver& pm,
                                  const Particles& particles,
                                  bool subtract_shot_noise) {
  const auto spectrum = pm.overdensity_spectrum(comm, particles);
  const std::size_t ng = pm.config().ng;
  const double box = pm.config().box;
  const double k_fundamental = 2.0 * std::numbers::pi / box;
  // Shells of width k_f up to the Nyquist wavenumber.
  const std::size_t nshells = ng / 2;
  std::vector<double> k_sum(nshells, 0.0);
  std::vector<double> p_sum(nshells, 0.0);
  std::vector<double> mode_count(nshells, 0.0);

  const double n3 = static_cast<double>(ng) * ng * ng;
  const double volume = box * box * box;
  const double norm = volume / (n3 * n3);

  const auto& dfft = pm.fft();
  const std::size_t kx0 = dfft.local_kx_start();
  const std::size_t nx_local = dfft.local_kx_count();
  for (std::size_t xl = 0; xl < nx_local; ++xl) {
    const double kx = k_fundamental *
                      static_cast<double>(fft::freq_of(kx0 + xl, ng));
    for (std::size_t y = 0; y < ng; ++y) {
      const double ky = k_fundamental *
                        static_cast<double>(fft::freq_of(y, ng));
      for (std::size_t z = 0; z < ng; ++z) {
        const double kz = k_fundamental *
                          static_cast<double>(fft::freq_of(z, ng));
        const double kmag = std::sqrt(kx * kx + ky * ky + kz * kz);
        if (kmag <= 0.0) continue;
        const auto shell = static_cast<std::size_t>(kmag / k_fundamental - 0.5);
        if (shell >= nshells) continue;
        const auto& mode = spectrum[(xl * ng + y) * ng + z];
        k_sum[shell] += kmag;
        p_sum[shell] += std::norm(mode) * norm;
        mode_count[shell] += 1.0;
      }
    }
  }

  comm.allreduce(std::span<double>(k_sum), comm::ReduceOp::kSum);
  comm.allreduce(std::span<double>(p_sum), comm::ReduceOp::kSum);
  comm.allreduce(std::span<double>(mode_count), comm::ReduceOp::kSum);

  // Global particle count for shot noise.
  std::int64_t n_owned = 0;
  for (std::size_t i = 0; i < particles.size(); ++i) {
    if (particles.is_owned(i)) ++n_owned;
  }
  const auto n_global =
      static_cast<double>(comm.allreduce_scalar(n_owned, comm::ReduceOp::kSum));
  const double shot = (subtract_shot_noise && n_global > 0.0)
                          ? volume / n_global
                          : 0.0;

  PowerSpectrumResult result;
  for (std::size_t s = 0; s < nshells; ++s) {
    if (mode_count[s] <= 0.0) continue;
    result.k.push_back(k_sum[s] / mode_count[s]);
    result.power.push_back(std::max(0.0, p_sum[s] / mode_count[s] - shot));
    result.modes.push_back(static_cast<std::uint64_t>(mode_count[s]));
  }
  return result;
}

}  // namespace crkhacc::analysis
