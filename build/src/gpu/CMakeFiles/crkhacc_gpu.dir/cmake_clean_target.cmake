file(REMOVE_RECURSE
  "libcrkhacc_gpu.a"
)
