// Tests for the deterministic intra-node threading layer: the
// work-stealing ThreadPool itself, and bitwise identity of every threaded
// short-range pipeline stage (tree build, short-range gravity, CRKSPH
// sweeps, PM deposit/interpolate) across thread counts.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "comm/world.h"
#include "core/particles.h"
#include "core/simulation.h"
#include "gpu/device.h"
#include "gravity/short_range.h"
#include "mesh/pm_solver.h"
#include "sph/solver.h"
#include "tree/chaining_mesh.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace crkhacc {
namespace {

using util::ThreadPool;

const unsigned kThreadCounts[] = {1, 2, 4, 8};

comm::Box3 cube(double size) {
  comm::Box3 box;
  box.lo = {0, 0, 0};
  box.hi = {size, size, size};
  return box;
}

/// Random particles of one species inside [0, box)^3.
Particles random_particles(std::size_t n, double box, Species species,
                           std::uint64_t seed) {
  SplitMix64 rng(seed);
  Particles p;
  for (std::size_t i = 0; i < n; ++i) {
    const auto j = p.push_back(
        static_cast<std::uint64_t>(i), species,
        static_cast<float>(rng.next_double() * box),
        static_cast<float>(rng.next_double() * box),
        static_cast<float>(rng.next_double() * box),
        static_cast<float>(rng.next_double() - 0.5),
        static_cast<float>(rng.next_double() - 0.5),
        static_cast<float>(rng.next_double() - 0.5),
        1.0f + static_cast<float>(rng.next_double()));
    if (species == Species::kGas) {
      p.hsml[j] = static_cast<float>(0.8 + 0.4 * rng.next_double());
      p.u[j] = 50.0f + 100.0f * static_cast<float>(rng.next_double());
    }
  }
  return p;
}

bool same_floats(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

// --- ThreadPool unit tests ---------------------------------------------------

TEST(ThreadPool, EmptyRangeIsNoOp) {
  ThreadPool pool(4);
  bool called = false;
  pool.parallel_for(5, 5, 1,
                    [&](std::size_t, std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
  const double r = pool.reduce(
      0, 0, 1, -1.5, [](std::size_t, std::size_t) { return 7.0; },
      [](double a, double b) { return a + b; });
  EXPECT_EQ(r, -1.5);
  EXPECT_EQ(pool.stats().parallel_regions, 0u);
}

TEST(ThreadPool, RangeSmallerThanThreadCountCoversEverything) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(0, 3, 1,
                    [&](std::size_t lo, std::size_t hi, std::size_t) {
                      for (std::size_t i = lo; i < hi; ++i) ++hits[i];
                    });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EveryElementVisitedExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 10'000;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(0, n, 64,
                    [&](std::size_t lo, std::size_t hi, std::size_t) {
                      for (std::size_t i = lo; i < hi; ++i) ++hits[i];
                    });
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
  EXPECT_EQ(pool.stats().chunks_executed, (n + 63) / 64);
  EXPECT_EQ(pool.stats().busy_seconds.size(), 4u);
}

TEST(ThreadPool, ChunkIndexMatchesFixedDecomposition) {
  // Chunk c must cover [begin + c*grain, ...) regardless of who runs it.
  ThreadPool pool(4);
  const std::size_t begin = 7, end = 1007, grain = 13;
  std::vector<std::atomic<bool>> ok((end - begin + grain - 1) / grain);
  for (auto& f : ok) f.store(false);
  pool.parallel_for(begin, end, grain,
                    [&](std::size_t lo, std::size_t hi, std::size_t c) {
                      if (lo == begin + c * grain &&
                          hi == std::min(lo + grain, end)) {
                        ok[c].store(true);
                      }
                    });
  for (auto& f : ok) EXPECT_TRUE(f.load());
}

TEST(ThreadPool, NestedSubmitRunsInline) {
  ThreadPool pool(4);
  const std::size_t outer = 16, inner = 100;
  std::vector<std::atomic<int>> hits(outer * inner);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(0, outer, 1,
                    [&](std::size_t olo, std::size_t ohi, std::size_t) {
                      for (std::size_t o = olo; o < ohi; ++o) {
                        pool.parallel_for(
                            0, inner, 8,
                            [&](std::size_t lo, std::size_t hi, std::size_t) {
                              for (std::size_t i = lo; i < hi; ++i) {
                                ++hits[o * inner + i];
                              }
                            });
                      }
                    });
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 1000, 1,
                        [&](std::size_t lo, std::size_t, std::size_t) {
                          if (lo == 500) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool remains usable for subsequent regions.
  std::atomic<int> count{0};
  pool.parallel_for(0, 100, 4,
                    [&](std::size_t lo, std::size_t hi, std::size_t) {
                      count += static_cast<int>(hi - lo);
                    });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ReduceIsBitwiseIdenticalAcrossThreadCounts) {
  // Pathological summands (wildly varying magnitudes) so any change in
  // combination order would change the rounded result.
  SplitMix64 rng(21);
  const std::size_t n = 4097;
  std::vector<double> values(n);
  for (auto& v : values) {
    v = (rng.next_double() - 0.5) * std::pow(10.0, 12.0 * rng.next_double());
  }
  auto sum_with = [&](unsigned threads) {
    ThreadPool pool(threads);
    return pool.reduce(
        0, n, 32, 0.0,
        [&](std::size_t lo, std::size_t hi) {
          double s = 0.0;
          for (std::size_t i = lo; i < hi; ++i) s += values[i];
          return s;
        },
        [](double a, double b) { return a + b; });
  };
  const double serial = sum_with(1);
  for (unsigned t : kThreadCounts) {
    EXPECT_EQ(sum_with(t), serial) << "threads=" << t;
  }
}

TEST(ThreadPool, ZeroSelectsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPool, StatsAccumulateAndReset) {
  ThreadPool pool(2);
  pool.parallel_for(0, 100, 10,
                    [](std::size_t, std::size_t, std::size_t) {});
  pool.parallel_for(0, 100, 10,
                    [](std::size_t, std::size_t, std::size_t) {});
  EXPECT_EQ(pool.stats().parallel_regions, 2u);
  EXPECT_EQ(pool.stats().chunks_executed, 20u);
  EXPECT_GT(pool.stats().wall_seconds, 0.0);
  pool.reset_stats();
  EXPECT_EQ(pool.stats().parallel_regions, 0u);
  EXPECT_EQ(pool.stats().threads, 2u);
}

// --- bitwise determinism of the pipeline stages ------------------------------

TEST(Determinism, TreeBuildIdenticalAcrossThreadCounts) {
  const auto p = random_particles(3000, 16.0, Species::kDarkMatter, 3);
  tree::ChainingMesh serial(cube(16.0), {2.0, 16});
  serial.build(p);
  for (unsigned t : kThreadCounts) {
    ThreadPool pool(t);
    tree::ChainingMesh threaded(cube(16.0), {2.0, 16});
    threaded.build(p, &pool);
    ASSERT_EQ(threaded.permutation(), serial.permutation()) << "threads=" << t;
    ASSERT_EQ(threaded.num_leaves(), serial.num_leaves()) << "threads=" << t;
    for (std::size_t l = 0; l < serial.num_leaves(); ++l) {
      const auto& a = serial.leaf(l);
      const auto& b = threaded.leaf(l);
      ASSERT_EQ(a.begin, b.begin);
      ASSERT_EQ(a.end, b.end);
      ASSERT_EQ(a.lo, b.lo);
      ASSERT_EQ(a.hi, b.hi);
    }
  }
}

TEST(Determinism, ShortRangeGravityBitwiseAcrossThreadCounts) {
  const auto base = random_particles(2000, 12.0, Species::kDarkMatter, 11);
  tree::ChainingMesh mesh(cube(12.0), {3.0, 32});
  mesh.build(base);
  gravity::GravityConfig config;

  auto forces_with = [&](ThreadPool* pool) {
    Particles p = base;
    gpu::FlopRegistry flops;
    gravity::compute_short_range(p, mesh, /*split=*/nullptr, config, 1.0,
                                 nullptr, flops, nullptr, pool);
    return p;
  };
  const Particles serial = forces_with(nullptr);
  for (unsigned t : kThreadCounts) {
    ThreadPool pool(t);
    const Particles threaded = forces_with(&pool);
    EXPECT_TRUE(same_floats(threaded.ax, serial.ax)) << "threads=" << t;
    EXPECT_TRUE(same_floats(threaded.ay, serial.ay)) << "threads=" << t;
    EXPECT_TRUE(same_floats(threaded.az, serial.az)) << "threads=" << t;
  }
}

TEST(Determinism, CrkSphSweepsBitwiseAcrossThreadCounts) {
  const auto base = random_particles(1500, 10.0, Species::kGas, 29);
  tree::ChainingMesh mesh(cube(10.0), {2.5, 32});
  mesh.build(base);

  auto hydro_with = [&](ThreadPool* pool) {
    Particles p = base;
    sph::SphConfig config;  // CRK on: exercises all three pair sweeps
    sph::SphSolver solver(config);
    gpu::FlopRegistry flops;
    solver.compute_forces(p, mesh, 1.0, nullptr, flops, nullptr, pool);
    return p;
  };
  const Particles serial = hydro_with(nullptr);
  for (unsigned t : kThreadCounts) {
    ThreadPool pool(t);
    const Particles threaded = hydro_with(&pool);
    EXPECT_TRUE(same_floats(threaded.rho, serial.rho)) << "threads=" << t;
    EXPECT_TRUE(same_floats(threaded.ax, serial.ax)) << "threads=" << t;
    EXPECT_TRUE(same_floats(threaded.ay, serial.ay)) << "threads=" << t;
    EXPECT_TRUE(same_floats(threaded.az, serial.az)) << "threads=" << t;
    EXPECT_TRUE(same_floats(threaded.du, serial.du)) << "threads=" << t;
  }
}

TEST(Determinism, PmDepositAndInterpolateBitwiseAcrossThreadCounts) {
  comm::World world(1);
  world.run([](comm::Communicator& comm) {
    const double box = 16.0;
    const comm::CartDecomposition decomp(comm.size(), box);
    const auto p = random_particles(5000, box, Species::kDarkMatter, 47);

    auto solve_with = [&](ThreadPool* pool, std::vector<double>& density,
                          double& mean, Particles& out) {
      mesh::PMSolver pm(comm, decomp, mesh::PMConfig{16, box, 1.5});
      pm.set_thread_pool(pool);
      density = pm.deposit(comm, p);
      mean = pm.mean_density();
      out = p;
      pm.apply(comm, out, 2.0);
    };

    std::vector<double> density0;
    double mean0 = 0.0;
    Particles out0;
    solve_with(nullptr, density0, mean0, out0);
    for (unsigned t : kThreadCounts) {
      ThreadPool pool(t);
      std::vector<double> density;
      double mean = 0.0;
      Particles out;
      solve_with(&pool, density, mean, out);
      ASSERT_EQ(density.size(), density0.size());
      EXPECT_EQ(0, std::memcmp(density.data(), density0.data(),
                               density.size() * sizeof(double)))
          << "threads=" << t;
      EXPECT_EQ(mean, mean0) << "threads=" << t;
      EXPECT_TRUE(same_floats(out.ax, out0.ax)) << "threads=" << t;
      EXPECT_TRUE(same_floats(out.ay, out0.ay)) << "threads=" << t;
      EXPECT_TRUE(same_floats(out.az, out0.az)) << "threads=" << t;
    }
  });
}

TEST(Determinism, FullHydroStepBitwiseAcrossThreadCounts) {
  // End-to-end: a full PM step (exchange, tree, PM solve, sub-cycled
  // gravity + CRKSPH + subgrid) with threads=N must leave the particle
  // state bitwise identical to threads=1.
  auto run_with = [](int threads) {
    core::SimConfig config;
    config.np = 6;
    config.box = 18.0;
    config.ng = 8;
    config.z_init = 20.0;
    config.z_final = 10.0;
    config.num_pm_steps = 2;
    config.hydro = true;
    config.subgrid_on = true;
    config.bins.max_depth = 3;
    config.seed = 7;
    config.threads = threads;
    Particles snapshot;
    comm::World world(1);
    world.run([&](comm::Communicator& comm) {
      core::SimContext ctx(config.threads);
      core::Simulation sim(ctx, comm, config);
      sim.initialize();
      sim.step();
      sim.step();
      snapshot = sim.particles();
    });
    return snapshot;
  };
  const Particles serial = run_with(1);
  for (int t : {2, 4, 8}) {
    const Particles threaded = run_with(t);
    ASSERT_EQ(threaded.size(), serial.size()) << "threads=" << t;
    EXPECT_EQ(threaded.id, serial.id) << "threads=" << t;
    EXPECT_TRUE(same_floats(threaded.x, serial.x)) << "threads=" << t;
    EXPECT_TRUE(same_floats(threaded.y, serial.y)) << "threads=" << t;
    EXPECT_TRUE(same_floats(threaded.z, serial.z)) << "threads=" << t;
    EXPECT_TRUE(same_floats(threaded.vx, serial.vx)) << "threads=" << t;
    EXPECT_TRUE(same_floats(threaded.vy, serial.vy)) << "threads=" << t;
    EXPECT_TRUE(same_floats(threaded.vz, serial.vz)) << "threads=" << t;
    EXPECT_TRUE(same_floats(threaded.u, serial.u)) << "threads=" << t;
    EXPECT_TRUE(same_floats(threaded.rho, serial.rho)) << "threads=" << t;
  }
}

}  // namespace
}  // namespace crkhacc
