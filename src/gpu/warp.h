// Leaf-pair kernel launch drivers: naive and warp-split, scheduled
// serially, by owner leaf, or by deferred-store chunk replay.
//
// The short-range solver's compute is leaf-to-leaf interaction kernels
// (Section IV-B2): all particles i of one leaf interact with all particles
// j of a neighboring leaf. Two execution strategies are implemented over
// the identical kernel definition, so their physics results agree bitwise
// up to floating-point accumulation order:
//
//  * kNaive — one logical thread per i-particle walks all j: it re-loads
//    j state from global memory and re-computes BOTH separable partials
//    for every pair. This is the register-heavy baseline the paper's
//    warp-splitting replaces.
//
//  * kWarpSplit — Algorithm 1 of the paper, executed literally on CPU
//    lanes: a warp of `warp_size` lanes is split in half; the low half
//    loads up to W = warp_size/2 particles of leaf i, the high half of
//    leaf j, each lane computes its separable partial ONCE, and W rotation
//    steps pair every lane with every partner, exchanging partials by
//    lane-indexed reads (the shuffle). Accumulation is lane-local with one
//    store per particle per tile (the per-leaf atomic). The i-side lane
//    file is loaded once per tile ROW and reused across the partner tiles
//    of that row, halving global loads relative to a per-tile reload.
//
// LaunchStats counts global loads, partial evaluations, interactions and
// stores, so the memory-traffic/register reduction of warp splitting is a
// measured output (bench/ablation_warp_split) rather than a claim.
//
// Kernel concept (see sph/ and gravity/ for real instances):
//
//   struct Kernel {
//     struct State   {...};              // registers loaded per particle
//     struct Partial {...};              // separable terms, shuffled
//     struct Accum   {...};              // lane-local accumulator
//     static constexpr const char* kName;
//     static constexpr double kFlopsPerInteraction;  // per ordered pair
//     static constexpr double kFlopsPerPartial;
//     State load(std::uint32_t particle) const;
//     Partial partial(const State&) const;
//     void interact(const State& self, const Partial& self_p,
//                   const State& other, const Partial& other_p,
//                   Accum& acc) const;   // accumulate contribution of
//                                        // `other` onto `self`
//     void store(std::uint32_t particle, const Accum&);  // += semantics
//   };
//
// Deterministic parallel launch: launch_pair_kernel optionally takes a
// util::ThreadPool and a LaunchConfig selecting one of two schedules
// (gpu/launch.h), both bitwise identical to the serial launch for any
// thread count:
//
//  * LaunchSchedule::kLeafOwner (default) — parallel_for over OWNER
//    leaves of a LaunchPlan. Each owner task walks its (partner, side)
//    entries in pair order, accumulating DIRECTLY into its own particles:
//    a cross pair (A, B) is evaluated one-sided twice — the i-side tiles
//    by A's task, the j-side tiles by B's task. No store buffering, no
//    serial replay. Bitwise identity holds because (1) every particle is
//    written only by its owner's task, (2) an owner's entries are ordered
//    by pair index and its tile walk visits the owner's chunks in the
//    same order as the serial driver, so each particle sees the exact
//    serial store sequence, and (3) the per-accumulator arithmetic of a
//    one-sided tile is unchanged from the both-sides tile (same rotation
//    order, same operand values — load/partial are pure).
//
//  * LaunchSchedule::kDeferredStore — the pair list is split into fixed
//    8-pair chunks (independent of thread count); workers capture stores
//    into per-chunk buffers and the calling thread replays them in chunk
//    order. O(interactions) transient memory and a serial replay tax;
//    kept as the measured baseline (bench/launch_schedule).
//
//  * LaunchSchedule::kSimd — the leaf-owner decomposition with the inner
//    tile evaluated simd::kWidth lanes per vector instruction
//    (gpu/warp_simd.h) for kernels that define the SimdPairKernel
//    surface; other kernels run the scalar tiles unchanged. Serial kSimd
//    launches also use the vector engine (the schedule selects the tile
//    ENGINE, not just the pool decomposition), so serial-vs-parallel
//    stays an apples-to-apples bitwise comparison.
//
// Kernel contract under parallel launches: load()/partial() must not read
// any field that store() writes within the same launch (the pass
// structure already guarantees it — positions/masses in, accelerations/
// densities out). Under kLeafOwner, store() additionally runs CONCURRENTLY
// on worker threads for DISTINCT particles, so store(i, ...) may only
// touch per-particle state of i (true of every kernel in the tree: they
// += into per-particle output arrays).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "gpu/launch.h"
#include "gpu/warp_simd.h"
#include "tree/chaining_mesh.h"
#include "util/assertions.h"
#include "util/thread_pool.h"
#include "util/timer.h"

// kMaxHalfWarp (the largest supported half-warp) lives in gpu/simd.h so
// the SIMD lane-buffer geometry can depend on it; it is still part of
// this header's public surface via that include.

namespace crkhacc::gpu {

namespace detail {

/// Naive side pass: accumulate contributions of leaf B onto every
/// particle of leaf A, reloading and recomputing per pair.
template <typename Kernel>
void naive_side(Kernel& kernel, const tree::ChainingMesh& cm,
                const tree::Leaf& a, const tree::Leaf& b, bool same_leaf,
                LaunchStats& stats) {
  const std::uint32_t* perm = cm.permutation().data();
  for (std::uint32_t s = a.begin; s < a.end; ++s) {
    const std::uint32_t i = perm[s];
    const auto si = kernel.load(i);
    ++stats.global_loads;
    typename Kernel::Accum acc{};
    for (std::uint32_t t = b.begin; t < b.end; ++t) {
      if (same_leaf && t == s) continue;
      const std::uint32_t j = perm[t];
      const auto sj = kernel.load(j);
      ++stats.global_loads;
      // Redundant recomputation of both partials — the cost warp
      // splitting removes.
      const auto pi = kernel.partial(si);
      const auto pj = kernel.partial(sj);
      stats.partial_evals += 2;
      kernel.interact(si, pi, sj, pj, acc);
      ++stats.interactions;
    }
    kernel.store(i, acc);
    ++stats.stores;
  }
}

// TileSide (which accumulator half of a tile is live) is declared in
// gpu/warp_simd.h, shared between these scalar drivers and the vector
// engine.

/// Lane-register file of one half-warp chunk: up to W particle states and
/// their separable partials, loaded once and reused across every tile of
/// a row (load()/partial() are pure and particle inputs do not change
/// within a launch, so hoisting the loads cannot change any result).
template <typename Kernel>
struct LaneFile {
  std::array<typename Kernel::State, kMaxHalfWarp> s;
  std::array<typename Kernel::Partial, kMaxHalfWarp> p;
  const std::uint32_t* idx = nullptr;
  std::uint32_t n = 0;

  void fill(const Kernel& kernel, const std::uint32_t* indices,
            std::uint32_t count, LaunchStats& stats) {
    idx = indices;
    n = count;
    for (std::uint32_t l = 0; l < count; ++l) {
      s[l] = kernel.load(indices[l]);
      p[l] = kernel.partial(s[l]);
    }
    stats.global_loads += count;
    stats.partial_evals += count;
  }
};

/// One warp-split tile over pre-loaded lane files. If `same_chunk`, only
/// the self-from-partner direction accumulates (every ordered pair
/// appears exactly once across the rotation). The rotation order and the
/// per-accumulator operand sequence are identical for every TileSide, so
/// a one-sided evaluation reproduces its half of the both-sides tile
/// bitwise: under the rotation m = (l + t) mod W, accumulator acc_i[l]
/// sees partners m = l, l+1, ..., W-1, 0, ..., l-1 (forward wrap) and
/// acc_j[m] sees i-lanes l = m, m-1, ..., 0, W-1, ..., m+1 (backward
/// wrap). The one-sided specializations below walk exactly those
/// sequences directly — same operands, same order, no dead rotation
/// scaffolding for the idle half.
template <TileSide Side, typename Kernel>
void warp_tile(Kernel& kernel, const LaneFile<Kernel>& fi,
               const LaneFile<Kernel>& fj, std::uint32_t w, bool same_chunk,
               LaunchStats& stats) {
  using Accum = typename Kernel::Accum;
  if constexpr (Side == TileSide::kBoth) {
    std::array<Accum, kMaxHalfWarp> acc_i{};
    std::array<Accum, kMaxHalfWarp> acc_j{};
    const bool do_j = !same_chunk;
    // Rotation: at step t, i-lane l is partnered with j-lane (l + t) mod W.
    for (std::uint32_t t = 0; t < w; ++t) {
      for (std::uint32_t l = 0; l < w; ++l) {
        const std::uint32_t m = (l + t) % w;
        if (l >= fi.n || m >= fj.n) continue;  // idle lanes on ragged chunks
        if (same_chunk && l == m) continue;    // self-interaction diagonal
        // The "shuffle": the partner's state/partial is read by lane index.
        kernel.interact(fi.s[l], fi.p[l], fj.s[m], fj.p[m], acc_i[l]);
        ++stats.interactions;
        if (do_j) {
          kernel.interact(fj.s[m], fj.p[m], fi.s[l], fi.p[l], acc_j[m]);
          ++stats.interactions;
        }
      }
    }
    for (std::uint32_t l = 0; l < fi.n; ++l) kernel.store(fi.idx[l], acc_i[l]);
    stats.stores += fi.n;
    if (do_j) {
      for (std::uint32_t m = 0; m < fj.n; ++m)
        kernel.store(fj.idx[m], acc_j[m]);
      stats.stores += fj.n;
    }
  } else if constexpr (Side == TileSide::kI) {
    // Forward-wrap partner scan per live accumulator (see above).
    for (std::uint32_t l = 0; l < fi.n; ++l) {
      Accum acc{};
      for (std::uint32_t m = l; m < fj.n; ++m) {
        kernel.interact(fi.s[l], fi.p[l], fj.s[m], fj.p[m], acc);
      }
      const std::uint32_t wrap = std::min(l, fj.n);
      for (std::uint32_t m = 0; m < wrap; ++m) {
        kernel.interact(fi.s[l], fi.p[l], fj.s[m], fj.p[m], acc);
      }
      kernel.store(fi.idx[l], acc);
      stats.interactions += fj.n;
    }
    stats.stores += fi.n;
  } else {
    // Backward-wrap i-lane scan per live j-side accumulator (see above).
    for (std::uint32_t m = 0; m < fj.n; ++m) {
      Accum acc{};
      for (std::uint32_t l = std::min(m + 1, fi.n); l-- > 0;) {
        kernel.interact(fj.s[m], fj.p[m], fi.s[l], fi.p[l], acc);
      }
      for (std::uint32_t l = fi.n; l-- > m + 1;) {
        kernel.interact(fj.s[m], fj.p[m], fi.s[l], fi.p[l], acc);
      }
      kernel.store(fj.idx[m], acc);
      stats.interactions += fi.n;
    }
    stats.stores += fj.n;
  }
}

/// Both-sides warp-split evaluation of pair (leaf_a, leaf_b) — the serial
/// driver. The i-side lane file is filled once per row and reused for
/// every partner chunk of that row.
template <typename Kernel>
void warp_split_pair(Kernel& kernel, const tree::ChainingMesh& cm,
                     std::uint32_t leaf_a, std::uint32_t leaf_b,
                     std::uint32_t warp_size, LaunchStats& stats) {
  const tree::Leaf& a = cm.leaf(leaf_a);
  const tree::Leaf& b = cm.leaf(leaf_b);
  const std::uint32_t* perm = cm.permutation().data();
  const std::uint32_t w = std::min(warp_size / 2, kMaxHalfWarp);
  const bool same_leaf = leaf_a == leaf_b;

  LaneFile<Kernel> fi, fj;
  for (std::uint32_t ci = a.begin; ci < a.end; ci += w) {
    fi.fill(kernel, perm + ci, std::min(w, a.end - ci), stats);
    const std::uint32_t cj_begin = same_leaf ? ci : b.begin;
    for (std::uint32_t cj = cj_begin; cj < b.end; cj += w) {
      fj.fill(kernel, perm + cj, std::min(w, b.end - cj), stats);
      warp_tile<TileSide::kBoth>(kernel, fi, fj, w, same_leaf && ci == cj,
                                 stats);
    }
  }
}

/// One-sided warp-split evaluation of cross pair (leaf_a, leaf_b): only
/// the `side` accumulators run. The OWNER's chunk loop is outermost with
/// its lane file hoisted; for kJ that transposes the serial (ci, cj)
/// visit order, which is safe because the reordered tiles store to
/// DIFFERENT owner chunks (disjoint particles) while each owner chunk
/// still sees its partner tiles in the serial ci order.
template <typename Kernel>
void warp_split_pair_sided(Kernel& kernel, const tree::ChainingMesh& cm,
                           std::uint32_t leaf_a, std::uint32_t leaf_b,
                           std::uint32_t warp_size, TileSide side,
                           LaunchStats& stats) {
  const tree::Leaf& a = cm.leaf(leaf_a);
  const tree::Leaf& b = cm.leaf(leaf_b);
  const std::uint32_t* perm = cm.permutation().data();
  const std::uint32_t w = std::min(warp_size / 2, kMaxHalfWarp);

  LaneFile<Kernel> fi, fj;
  if (side == TileSide::kI) {
    for (std::uint32_t ci = a.begin; ci < a.end; ci += w) {
      fi.fill(kernel, perm + ci, std::min(w, a.end - ci), stats);
      for (std::uint32_t cj = b.begin; cj < b.end; cj += w) {
        fj.fill(kernel, perm + cj, std::min(w, b.end - cj), stats);
        warp_tile<TileSide::kI>(kernel, fi, fj, w, /*same_chunk=*/false,
                                stats);
      }
    }
  } else {
    for (std::uint32_t cj = b.begin; cj < b.end; cj += w) {
      fj.fill(kernel, perm + cj, std::min(w, b.end - cj), stats);
      for (std::uint32_t ci = a.begin; ci < a.end; ci += w) {
        fi.fill(kernel, perm + ci, std::min(w, a.end - ci), stats);
        warp_tile<TileSide::kJ>(kernel, fi, fj, w, /*same_chunk=*/false,
                                stats);
      }
    }
  }
}

/// Evaluate a contiguous sub-range [first, last) of the pair list. Under
/// the kSimd schedule, kernels with a SIMD form take the vector tile
/// engine; wrapper kernels (DeferredStoreKernel, test kernels with
/// double accumulators) fall back to scalar tiles — still bitwise.
template <typename Kernel>
void run_pair_range(
    Kernel& kernel, const tree::ChainingMesh& cm,
    std::span<const std::pair<std::uint32_t, std::uint32_t>> pairs,
    std::size_t first, std::size_t last, const LaunchConfig& config,
    LaunchStats& stats) {
  if (config.mode == LaunchMode::kNaive) {
    for (std::size_t q = first; q < last; ++q) {
      const auto [la, lb] = pairs[q];
      const bool same = la == lb;
      naive_side(kernel, cm, cm.leaf(la), cm.leaf(lb), same, stats);
      if (!same) {
        naive_side(kernel, cm, cm.leaf(lb), cm.leaf(la), false, stats);
      }
    }
    return;
  }
  if constexpr (SimdPairKernel<Kernel>) {
    if (config.schedule == LaunchSchedule::kSimd) {
      for (std::size_t q = first; q < last; ++q) {
        const auto [la, lb] = pairs[q];
        simd_pair(kernel, cm, la, lb, config, stats);
      }
      return;
    }
  }
  for (std::size_t q = first; q < last; ++q) {
    const auto [la, lb] = pairs[q];
    warp_split_pair(kernel, cm, la, lb, config.warp_size, stats);
  }
}

/// Evaluate every entry of plan owner `t`: the tiles that accumulate onto
/// that owner's particles, in pair order. SIMD fallback rules as in
/// run_pair_range.
template <typename Kernel>
void run_owner_entries(Kernel& kernel, const tree::ChainingMesh& cm,
                       const LaunchPlan& plan, std::size_t t,
                       const LaunchConfig& config, LaunchStats& stats) {
  const std::uint32_t owner = plan.owner(t);
  for (const LaunchPlan::Entry& e : plan.entries(t)) {
    if (config.mode == LaunchMode::kNaive) {
      // naive_side is already one-sided: accumulate partner onto owner.
      naive_side(kernel, cm, cm.leaf(owner), cm.leaf(e.partner),
                 e.side == LaunchPlan::Side::kBoth, stats);
      continue;
    }
    if constexpr (SimdPairKernel<Kernel>) {
      if (config.schedule == LaunchSchedule::kSimd) {
        switch (e.side) {
          case LaunchPlan::Side::kBoth:
            simd_pair(kernel, cm, owner, owner, config, stats);
            break;
          case LaunchPlan::Side::kISide:
            simd_pair_sided(kernel, cm, owner, e.partner, config,
                            TileSide::kI, stats);
            break;
          case LaunchPlan::Side::kJSide:
            simd_pair_sided(kernel, cm, e.partner, owner, config,
                            TileSide::kJ, stats);
            break;
        }
        continue;
      }
    }
    switch (e.side) {
      case LaunchPlan::Side::kBoth:
        warp_split_pair(kernel, cm, owner, owner, config.warp_size, stats);
        break;
      case LaunchPlan::Side::kISide:
        warp_split_pair_sided(kernel, cm, owner, e.partner, config.warp_size,
                              TileSide::kI, stats);
        break;
      case LaunchPlan::Side::kJSide:
        warp_split_pair_sided(kernel, cm, e.partner, owner, config.warp_size,
                              TileSide::kJ, stats);
        break;
    }
  }
}

/// Forwards load/partial/interact to the wrapped kernel (shared read-only
/// across workers) and captures store() calls into a chunk-private buffer
/// for ordered replay on the calling thread.
template <typename Kernel>
class DeferredStoreKernel {
 public:
  using State = typename Kernel::State;
  using Partial = typename Kernel::Partial;
  using Accum = typename Kernel::Accum;
  static constexpr const char* kName = Kernel::kName;
  static constexpr double kFlopsPerInteraction = Kernel::kFlopsPerInteraction;
  static constexpr double kFlopsPerPartial = Kernel::kFlopsPerPartial;

  DeferredStoreKernel(const Kernel& kernel,
                      std::vector<std::pair<std::uint32_t, Accum>>& stores)
      : kernel_(kernel), stores_(stores) {}

  State load(std::uint32_t i) const { return kernel_.load(i); }
  Partial partial(const State& s) const { return kernel_.partial(s); }
  void interact(const State& self, const Partial& self_p, const State& other,
                const Partial& other_p, Accum& acc) const {
    kernel_.interact(self, self_p, other, other_p, acc);
  }
  void store(std::uint32_t i, const Accum& acc) {
    stores_.emplace_back(i, acc);
  }

 private:
  const Kernel& kernel_;
  std::vector<std::pair<std::uint32_t, Accum>>& stores_;
};

/// Pairs per deferred-store chunk. Fixed (never derived from the thread
/// count) so the chunk decomposition — and therefore the store-replay
/// order — is identical for every pool size.
inline constexpr std::size_t kPairsPerChunk = 8;

/// Per-thread working-set estimate of a launch under `config` (the
/// register_bytes_per_thread stat), shared by every launch entry point.
template <typename Kernel>
std::size_t register_footprint(const LaunchConfig& config) {
  std::size_t bytes;
  if (config.mode == LaunchMode::kNaive) {
    bytes = 2 * sizeof(typename Kernel::State) +
            2 * sizeof(typename Kernel::Partial) +
            sizeof(typename Kernel::Accum);
  } else {
    bytes = sizeof(typename Kernel::State) +
            sizeof(typename Kernel::Partial) + sizeof(typename Kernel::Accum);
  }
  if constexpr (detail::SimdPairKernel<Kernel>) {
    if (config.schedule == LaunchSchedule::kSimd &&
        config.mode == LaunchMode::kWarpSplit) {
      // The vector engine's working set: two padded SoA lane buffers
      // plus the vector accumulator block.
      bytes = 2 * sizeof(typename Kernel::SimdLanes) +
              sizeof(typename Kernel::SimdAccum);
    }
  }
  return bytes;
}

/// Shared implementation behind the public overloads. `plan` may be null
/// unless the launch takes the parallel leaf-owner path.
template <typename Kernel>
LaunchStats launch_impl(
    Kernel& kernel, const tree::ChainingMesh& cm,
    std::span<const std::pair<std::uint32_t, std::uint32_t>> pairs,
    const LaunchPlan* plan, const LaunchConfig& config,
    util::ThreadPool* pool) {
  const char* invalid = config.invalid_reason();
  CHECK_MSG(invalid == nullptr, (invalid ? invalid : ""));

  LaunchStats stats;
  Stopwatch watch;
  stats.register_bytes_per_thread = detail::register_footprint<Kernel>(config);
  if (!pool || pool->num_threads() <= 1) {
    detail::run_pair_range(kernel, cm, pairs, 0, pairs.size(), config, stats);
  } else if (config.schedule == LaunchSchedule::kLeafOwner ||
             config.schedule == LaunchSchedule::kSimd) {
    // kSimd shares the owner-leaf decomposition: same task granularity,
    // same store ownership, only the tile engine differs.
    CHECK_MSG(plan != nullptr,
              "parallel leaf-owner launch requires a LaunchPlan");
    // One task per owner leaf; each accumulates in place into disjoint
    // particles, so there is nothing to replay and nothing to buffer.
    std::vector<LaunchStats> owner_stats(plan->num_owners());
    pool->parallel_for(0, plan->num_owners(), 1,
                       [&](std::size_t lo, std::size_t hi, std::size_t c) {
                         for (std::size_t t = lo; t < hi; ++t) {
                           detail::run_owner_entries(kernel, cm, *plan, t,
                                                     config, owner_stats[c]);
                         }
                       });
    for (const LaunchStats& s : owner_stats) {
      stats.merge(s, MergeTiming::kExclusive);
    }
  } else {
    using Accum = typename Kernel::Accum;
    struct ChunkResult {
      LaunchStats stats;
      std::vector<std::pair<std::uint32_t, Accum>> stores;
    };
    const std::size_t nchunks =
        (pairs.size() + detail::kPairsPerChunk - 1) / detail::kPairsPerChunk;
    std::vector<ChunkResult> chunks(nchunks);
    pool->parallel_for(
        0, pairs.size(), detail::kPairsPerChunk,
        [&](std::size_t lo, std::size_t hi, std::size_t c) {
          detail::DeferredStoreKernel<Kernel> deferred(kernel,
                                                       chunks[c].stores);
          detail::run_pair_range(deferred, cm, pairs, lo, hi, config,
                                 chunks[c].stats);
        });
    // Ordered replay: chunk order x in-chunk order == serial pair order.
    std::uint64_t buffered_bytes = 0;
    for (auto& chunk : chunks) {
      for (const auto& [i, acc] : chunk.stores) kernel.store(i, acc);
      buffered_bytes += chunk.stores.capacity() *
                        sizeof(std::pair<std::uint32_t, Accum>);
      stats.merge(chunk.stats, MergeTiming::kExclusive);
    }
    // All chunk buffers are alive simultaneously between the region end
    // and the replay — the O(interactions) transient the leaf-owner
    // schedule eliminates.
    stats.store_buffer_bytes = buffered_bytes;
  }
  stats.seconds = watch.seconds();
  stats.flops = static_cast<double>(stats.interactions) *
                    Kernel::kFlopsPerInteraction +
                static_cast<double>(stats.partial_evals) *
                    Kernel::kFlopsPerPartial;
  return stats;
}

}  // namespace detail

/// Execute `kernel` over the owner plan's pair work. Serial (no pool, or
/// one thread) launches run the canonical pair-by-pair order; parallel
/// launches follow config.schedule (see the header comment). Bitwise
/// identical to serial for any thread count under BOTH schedules.
template <typename Kernel>
LaunchStats launch_pair_kernel(Kernel& kernel, const tree::ChainingMesh& cm,
                               const LaunchPlan& plan,
                               const LaunchConfig& config,
                               util::ThreadPool* pool = nullptr) {
  return detail::launch_impl(kernel, cm, plan.pairs(), &plan, config, pool);
}

/// Convenience overload building the plan on demand. Pairs must satisfy
/// first <= second (as produced by ChainingMesh::interaction_pairs); both
/// orientations are accumulated. Callers launching several kernels over
/// one pair list should build the LaunchPlan once and use the overload
/// above.
template <typename Kernel>
LaunchStats launch_pair_kernel(
    Kernel& kernel, const tree::ChainingMesh& cm,
    std::span<const std::pair<std::uint32_t, std::uint32_t>> pairs,
    const LaunchConfig& config, util::ThreadPool* pool = nullptr) {
  if (pool && pool->num_threads() > 1 &&
      (config.schedule == LaunchSchedule::kLeafOwner ||
       config.schedule == LaunchSchedule::kSimd)) {
    const LaunchPlan plan(cm, pairs);
    return detail::launch_impl(kernel, cm, plan.pairs(), &plan, config, pool);
  }
  return detail::launch_impl(kernel, cm, pairs, nullptr, config, pool);
}

/// Execute exactly the plan's owner tasks — the one-task-per-owner-leaf
/// decomposition — skipping tasks flagged in `skip_task` (nullable,
/// indexed by TASK position t, not by leaf). The work-packet migration
/// entry point (core/load_balancer.h): the donor launches with its
/// migrated tasks flagged, the helper launches a packet-rebuilt plan
/// with no flags.
///
/// Unlike launch_pair_kernel, SERIAL launches also run the owner
/// decomposition rather than the canonical pair order — a subset launch
/// has no pair-walk equivalent. Per particle this changes nothing: a
/// particle is stored to only by its owner's task, whose tile order
/// equals the serial pair order (the leaf-owner bitwise contract), so
/// results are bitwise identical to a pair-order launch for every
/// schedule, including kDeferredStore configs (owner tasks write
/// disjoint particles in place; there is nothing to defer).
template <typename Kernel>
LaunchStats launch_owner_tasks(Kernel& kernel, const tree::ChainingMesh& cm,
                               const LaunchPlan& plan,
                               const LaunchConfig& config,
                               const std::uint8_t* skip_task = nullptr,
                               util::ThreadPool* pool = nullptr) {
  const char* invalid = config.invalid_reason();
  CHECK_MSG(invalid == nullptr, (invalid ? invalid : ""));

  LaunchStats stats;
  Stopwatch watch;
  stats.register_bytes_per_thread = detail::register_footprint<Kernel>(config);
  if (!pool || pool->num_threads() <= 1) {
    for (std::size_t t = 0; t < plan.num_owners(); ++t) {
      if (skip_task && skip_task[t]) continue;
      detail::run_owner_entries(kernel, cm, plan, t, config, stats);
    }
  } else {
    std::vector<LaunchStats> owner_stats(plan.num_owners());
    pool->parallel_for(0, plan.num_owners(), 1,
                       [&](std::size_t lo, std::size_t hi, std::size_t c) {
                         for (std::size_t t = lo; t < hi; ++t) {
                           if (skip_task && skip_task[t]) continue;
                           detail::run_owner_entries(kernel, cm, plan, t,
                                                     config, owner_stats[c]);
                         }
                       });
    for (const LaunchStats& s : owner_stats) {
      stats.merge(s, MergeTiming::kExclusive);
    }
  }
  stats.seconds = watch.seconds();
  stats.flops = static_cast<double>(stats.interactions) *
                    Kernel::kFlopsPerInteraction +
                static_cast<double>(stats.partial_evals) *
                    Kernel::kFlopsPerPartial;
  return stats;
}

}  // namespace crkhacc::gpu
