// End-to-end tests of the Simulation driver: short cosmological runs,
// conservation and sanity invariants, restart equivalence, fault
// tolerance, and rank-count invariance.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <memory>
#include <mutex>
#include <tuple>

#include "comm/world.h"
#include "core/diagnostics.h"
#include "core/simulation.h"

namespace crkhacc::core {
namespace {

namespace fs = std::filesystem;

SimConfig tiny_config(bool hydro) {
  SimConfig config;
  config.np = 8;
  config.box = 24.0;
  config.ng = 16;
  config.z_init = 20.0;
  config.z_final = 5.0;
  config.num_pm_steps = 3;
  config.hydro = hydro;
  config.subgrid_on = hydro;
  config.bins.max_depth = 4;
  config.seed = 99;
  return config;
}

class TempDir {
 public:
  TempDir() {
    // PID-qualified: ctest -j runs each case in its own process, so a
    // per-process counter alone collides across concurrent cases.
    path_ = fs::temp_directory_path() /
            ("crkhacc_sim_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }

 private:
  static inline int counter_ = 0;
  fs::path path_;
};

TEST(Simulation, GravityOnlyRunCompletes) {
  comm::World world(2);
  world.run([](comm::Communicator& comm) {
    const auto sim_config = tiny_config(/*hydro=*/false);
    SimContext ctx(sim_config.threads);
    Simulation sim(ctx, comm, sim_config);
    sim.initialize();
    const auto result = sim.run();
    EXPECT_TRUE(result.completed);
    EXPECT_EQ(result.steps_done, 3u);
    // Global particle count conserved.
    std::int64_t owned = 0;
    const auto& p = sim.particles();
    for (std::size_t i = 0; i < p.size(); ++i) owned += p.is_owned(i);
    const auto total = comm.allreduce_scalar(owned, comm::ReduceOp::kSum);
    EXPECT_EQ(total, 8 * 8 * 8);
    // Everything finite and in the box.
    for (std::size_t i = 0; i < p.size(); ++i) {
      if (!p.is_owned(i)) continue;
      ASSERT_TRUE(std::isfinite(p.x[i]) && std::isfinite(p.vx[i]));
      ASSERT_GE(p.x[i], 0.0f);
      ASSERT_LT(p.x[i], 24.0f);
    }
    EXPECT_NEAR(sim.scale_factor(), 1.0 / 6.0, 1e-9);
  });
}

TEST(Simulation, HydroRunCompletesWithSaneState) {
  comm::World world(2);
  world.run([](comm::Communicator& comm) {
    const auto sim_config = tiny_config(/*hydro=*/true);
    SimContext ctx(sim_config.threads);
    Simulation sim(ctx, comm, sim_config);
    sim.initialize();
    const auto result = sim.run();
    EXPECT_TRUE(result.completed);
    const auto& p = sim.particles();
    std::int64_t owned = 0;
    double mass = 0.0;
    for (std::size_t i = 0; i < p.size(); ++i) {
      if (!p.is_owned(i)) continue;
      ++owned;
      mass += p.mass[i];
      ASSERT_TRUE(std::isfinite(p.u[i]));
      ASSERT_GE(p.u[i], 0.0f);
      ASSERT_TRUE(std::isfinite(p.vx[i]));
      if (p.is_gas(i)) {
        ASSERT_GT(p.hsml[i], 0.0f);
        ASSERT_GE(p.rho[i], 0.0f);
      }
    }
    const auto total = comm.allreduce_scalar(owned, comm::ReduceOp::kSum);
    EXPECT_EQ(total, 2 * 8 * 8 * 8);
    const double total_mass =
        comm.allreduce_scalar(mass, comm::ReduceOp::kSum);
    const auto expected_mass = sim.background().mean_matter_density() *
                               24.0 * 24.0 * 24.0;
    EXPECT_NEAR(total_mass, expected_mass, 0.01 * expected_mass);
  });
}

TEST(Simulation, ThreadedRunConservationWithinSerialTolerances) {
  // Conservation regression for the threaded pipeline: a multi-step hydro
  // run with worker threads must show the same (small) mass/momentum
  // drift as the serial run. Bitwise determinism makes this exact: the
  // two runs end in identical global budgets.
  auto run_with = [](int threads) {
    ConservationSnapshot before, after;
    std::uint64_t regions = 0;
    comm::World world(1);
    world.run([&](comm::Communicator& comm) {
      auto config = tiny_config(true);
      config.threads = threads;
      SimContext ctx(config.threads);
      Simulation sim(ctx, comm, config);
      sim.initialize();
      before = measure_conservation(comm, sim.particles());
      const auto result = sim.run();
      EXPECT_TRUE(result.completed);
      EXPECT_EQ(result.threading.threads,
                static_cast<unsigned>(std::max(threads, 1)));
      regions = result.threading.parallel_regions;
      after = measure_conservation(comm, sim.particles());
    });
    return std::tuple{before, after, regions};
  };

  const auto [before1, after1, regions1] = run_with(1);
  const auto [before4, after4, regions4] = run_with(4);

  // Serial-run tolerance: subgrid sources move mass between species but
  // the total budget only changes through star formation / feedback,
  // which is bounded on this tiny box.
  EXPECT_LT(std::abs(mass_drift(before1, after1)), 1e-3);
  EXPECT_LT(after1.momentum_asymmetry, 0.05);

  // The threaded run matches the serial budgets exactly.
  EXPECT_EQ(after4.mass_total, after1.mass_total);
  EXPECT_EQ(after4.mass_gas, after1.mass_gas);
  EXPECT_EQ(after4.momentum, after1.momentum);
  EXPECT_EQ(after4.kinetic_energy, after1.kinetic_energy);
  EXPECT_EQ(after4.thermal_energy, after1.thermal_energy);
  EXPECT_EQ(after4.count, after1.count);
  // The threaded run really did go through the pool; the serial run
  // bypasses it entirely (callers take the inline path for threads=1).
  EXPECT_GT(regions4, 0u);
  EXPECT_EQ(regions1, 0u);
}

TEST(Simulation, StructureGrowsOverTime) {
  // The rms peculiar velocity must grow as structure forms.
  comm::World world(1);
  world.run([](comm::Communicator& comm) {
    auto config = tiny_config(false);
    config.num_pm_steps = 4;
    SimContext ctx(config.threads);
    Simulation sim(ctx, comm, config);
    sim.initialize();
    auto rms_velocity = [&] {
      const auto& p = sim.particles();
      double sum = 0.0;
      std::size_t n = 0;
      for (std::size_t i = 0; i < p.size(); ++i) {
        if (!p.is_owned(i)) continue;
        sum += static_cast<double>(p.vx[i]) * p.vx[i] +
               static_cast<double>(p.vy[i]) * p.vy[i] +
               static_cast<double>(p.vz[i]) * p.vz[i];
        ++n;
      }
      return std::sqrt(sum / static_cast<double>(n));
    };
    const double v0 = rms_velocity();
    sim.run();
    EXPECT_GT(rms_velocity(), v0);
  });
}

TEST(Simulation, AdaptiveBinsPopulated) {
  comm::World world(1);
  world.run([](comm::Communicator& comm) {
    const auto sim_config = tiny_config(true);
    SimContext ctx(sim_config.threads);
    Simulation sim(ctx, comm, sim_config);
    sim.initialize();
    const auto report = sim.step();
    EXPECT_GE(report.depth, 0);
    EXPECT_EQ(report.substeps, 1ull << report.depth);
    EXPECT_GT(report.active_updates, 0u);
  });
}

TEST(Simulation, FlatSteppingForcesUniformBins) {
  comm::World world(1);
  world.run([](comm::Communicator& comm) {
    auto config = tiny_config(true);
    config.flat_stepping = true;
    SimContext ctx(config.threads);
    Simulation sim(ctx, comm, config);
    sim.initialize();
    sim.step();
    const auto& p = sim.particles();
    const auto bin0 = p.bin[0];
    for (std::size_t i = 0; i < p.size(); ++i) {
      ASSERT_EQ(p.bin[i], bin0);
    }
  });
}

TEST(Simulation, AnalysisProducesResults) {
  comm::World world(2);
  world.run([](comm::Communicator& comm) {
    auto config = tiny_config(false);
    config.z_init = 20.0;
    config.z_final = 2.0;
    config.num_pm_steps = 4;
    SimContext ctx(config.threads);
    Simulation sim(ctx, comm, config);
    sim.initialize();
    sim.run();
    const auto analysis = sim.run_analysis();
    EXPECT_GE(analysis.halo_count, 0);
    EXPECT_FALSE(analysis.power.k.empty());
    // The measured spectrum has power on large scales.
    EXPECT_GT(analysis.power.power.front(), 0.0);
    EXPECT_GT(analysis.slice.mean_density, 0.0);
    EXPECT_GE(analysis.slice.clumping, 1.0);
  });
}

TEST(Simulation, TimerTaxonomyCoversComponents) {
  comm::World world(1);
  world.run([](comm::Communicator& comm) {
    const auto sim_config = tiny_config(true);
    SimContext ctx(sim_config.threads);
    Simulation sim(ctx, comm, sim_config);
    sim.initialize();
    sim.step();
    auto& timers = sim.timers();
    EXPECT_GT(timers.total(timers::kLongRange), 0.0);
    EXPECT_GT(timers.total(timers::kTreeBuild), 0.0);
    EXPECT_GT(timers.total(timers::kShortRange), 0.0);
    EXPECT_GT(timers.total(timers::kMisc), 0.0);
    // Short-range dominates, as in the paper's Fig. 5.
    EXPECT_GT(timers.fraction(timers::kShortRange), 0.3);
    // FLOPs were recorded for the short-range kernels.
    EXPECT_GT(sim.flops().total_flops(), 0.0);
  });
}

TEST(Simulation, RankCountInvariantParticleTotals) {
  auto run_with = [](int ranks) {
    double mass = 0.0;
    std::int64_t count = 0;
    std::mutex mutex;
    comm::World world(ranks);
    world.run([&](comm::Communicator& comm) {
      const auto sim_config = tiny_config(false);
      SimContext ctx(sim_config.threads);
      Simulation sim(ctx, comm, sim_config);
      sim.initialize();
      sim.run();
      const auto& p = sim.particles();
      double local_mass = 0.0;
      std::int64_t local_count = 0;
      for (std::size_t i = 0; i < p.size(); ++i) {
        if (!p.is_owned(i)) continue;
        local_mass += p.mass[i];
        ++local_count;
      }
      std::lock_guard<std::mutex> lock(mutex);
      mass += local_mass;
      count += local_count;
    });
    return std::make_pair(mass, count);
  };
  const auto [mass1, count1] = run_with(1);
  const auto [mass4, count4] = run_with(4);
  EXPECT_EQ(count1, count4);
  EXPECT_NEAR(mass1, mass4, 1e-6 * mass1);
}

TEST(Simulation, CheckpointRestartResumesExactStep) {
  TempDir dir;
  comm::World world(2);
  io::ThrottledStore pfs(io::StoreConfig{dir.str() + "/pfs", 0.0, 0.0, true});
  std::vector<std::unique_ptr<io::ThrottledStore>> nvmes;
  for (int r = 0; r < 2; ++r) {
    nvmes.push_back(std::make_unique<io::ThrottledStore>(io::StoreConfig{
        dir.str() + "/nvme" + std::to_string(r), 0.0, 0.0, false}));
  }
  world.run([&](comm::Communicator& comm) {
    io::MultiTierWriter writer(*nvmes[static_cast<std::size_t>(comm.rank())],
                               pfs, io::MultiTierConfig{comm.rank(), 4});
    auto config = tiny_config(false);
    config.num_pm_steps = 3;
    SimContext ctx(config.threads);
    Simulation sim(ctx, comm, config);
    sim.initialize();
    sim.step(&writer);
    sim.step(&writer);
    writer.drain();
    comm.barrier();

    // Discover and restore: must land on step 2.
    const auto latest = io::latest_complete_checkpoint(pfs, comm.size());
    ASSERT_TRUE(latest.has_value());
    EXPECT_EQ(*latest, 2u);
    Particles restored;
    io::SnapshotMeta meta;
    ASSERT_TRUE(io::restore_checkpoint(pfs, *latest, comm.rank(), meta,
                                       restored));
    SimContext ctx_resumed(config.threads);
    Simulation resumed(ctx_resumed, comm, config);
    resumed.initialize_from(std::move(restored), meta.step);
    EXPECT_EQ(resumed.current_step(), 2u);
    EXPECT_NEAR(resumed.scale_factor(), sim.scale_factor(), 1e-12);
    // The restored particle state matches the writer's source bit-exactly.
    const auto& a = sim.particles();
    const auto& b = resumed.particles();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a.x[i], b.x[i]);
      ASSERT_EQ(a.vx[i], b.vx[i]);
      ASSERT_EQ(a.ghost[i], b.ghost[i]);
    }
    // And both can finish the campaign.
    const auto done = resumed.run();
    EXPECT_TRUE(done.completed);
    comm.barrier();
  });
}

TEST(Simulation, RestartContinuationIsBitExact) {
  // The strongest fault-tolerance property: a run restored from a
  // checkpoint and stepped once matches the uninterrupted run bit for
  // bit, because checkpoints carry the complete per-rank state (ghosts
  // included) and stepping is deterministic.
  TempDir dir;
  comm::World world(2);
  io::ThrottledStore pfs(io::StoreConfig{dir.str() + "/pfs", 0.0, 0.0, true});
  std::vector<std::unique_ptr<io::ThrottledStore>> nvmes;
  for (int r = 0; r < 2; ++r) {
    nvmes.push_back(std::make_unique<io::ThrottledStore>(io::StoreConfig{
        dir.str() + "/nvme" + std::to_string(r), 0.0, 0.0, false}));
  }
  world.run([&](comm::Communicator& comm) {
    io::MultiTierWriter writer(*nvmes[static_cast<std::size_t>(comm.rank())],
                               pfs, io::MultiTierConfig{comm.rank(), 4});
    auto config = tiny_config(/*hydro=*/true);
    config.num_pm_steps = 3;
    SimContext ctx_original(config.threads);
    Simulation original(ctx_original, comm, config);
    original.initialize();
    original.step(&writer);  // checkpoint at step 1
    writer.drain();
    comm.barrier();
    original.step();  // continue uninterrupted to step 2

    Particles restored;
    io::SnapshotMeta meta;
    ASSERT_TRUE(io::restore_checkpoint(pfs, 1, comm.rank(), meta, restored));
    SimContext ctx_resumed(config.threads);
    Simulation resumed(ctx_resumed, comm, config);
    resumed.initialize_from(std::move(restored), meta.step);
    resumed.step();  // replay step 1 -> 2

    const auto& a = original.particles();
    const auto& b = resumed.particles();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a.id[i], b.id[i]);
      ASSERT_EQ(a.x[i], b.x[i]);
      ASSERT_EQ(a.y[i], b.y[i]);
      ASSERT_EQ(a.z[i], b.z[i]);
      ASSERT_EQ(a.vx[i], b.vx[i]);
      ASSERT_EQ(a.u[i], b.u[i]);
      ASSERT_EQ(a.rho[i], b.rho[i]);
      ASSERT_EQ(a.species[i], b.species[i]);
    }
    comm.barrier();
  });
}

TEST(Simulation, FaultInjectionRecoversAndCompletes) {
  TempDir dir;
  comm::World world(2);
  // Shared stores across rank threads.
  io::ThrottledStore pfs(io::StoreConfig{dir.str() + "/pfs", 0.0, 0.0, true});
  std::vector<std::unique_ptr<io::ThrottledStore>> nvmes;
  for (int r = 0; r < 2; ++r) {
    nvmes.push_back(std::make_unique<io::ThrottledStore>(io::StoreConfig{
        dir.str() + "/nvme" + std::to_string(r), 0.0, 0.0, false}));
  }
  world.run([&](comm::Communicator& comm) {
    io::MultiTierWriter writer(*nvmes[static_cast<std::size_t>(comm.rank())],
                               pfs, io::MultiTierConfig{comm.rank(), 4});
    auto config = tiny_config(false);
    config.num_pm_steps = 4;
    SimContext ctx(config.threads);
    Simulation sim(ctx, comm, config);
    sim.initialize();
    // MTTI chosen so roughly half the step attempts are interrupted.
    const io::FaultInjector fault(2.0 * sim.background().time_of(1.0), 5);
    const auto result = sim.run(&writer, &pfs, &fault);
    EXPECT_TRUE(result.completed);
    EXPECT_EQ(result.steps_done, 4u);
    writer.drain();
  });
}

TEST(Simulation, AnalysisCadenceCollectsResults) {
  comm::World world(1);
  world.run([](comm::Communicator& comm) {
    auto config = tiny_config(false);
    config.analysis_every = 2;
    config.num_pm_steps = 4;
    SimContext ctx(config.threads);
    Simulation sim(ctx, comm, config);
    sim.initialize();
    const auto result = sim.run();
    EXPECT_EQ(result.analyses.size(), 2u);  // after steps 2 and 4
  });
}

}  // namespace
}  // namespace crkhacc::core
