// Multi-tiered checkpoint writer (Section IV-B4).
//
// Per rank: synchronized writes go to the node-local tier (NVMe); a
// background bleeder thread then moves completed files to the PFS tier
// and stamps a completion marker, while a pruning pass removes
// checkpoints older than the retention window on both tiers. The
// simulation thread only ever blocks on the fast local write — the PFS
// never sits on the critical path, which is how the paper sustains an
// effective bandwidth above Orion's direct-write peak.
//
// Fault hardening: every tier write is verified by read-back against the
// payload CRC32 and retried with bounded exponential backoff (torn
// writes, bit flips, and transient EIO are injectable via the stores'
// FaultPolicy). Completion markers carry the payload size + CRC, so a
// checkpoint only counts as complete once its bytes are provably intact
// on the PFS. If the node-local tier fails hard (sticky ENOSPC), the
// writer degrades gracefully to verified direct-to-PFS writes.
//
// write_checkpoint_direct() is the baseline: a synchronous write straight
// to the shared PFS, blocking the simulation for the full channel time.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/particles.h"
#include "io/generic_io.h"
#include "io/storage.h"

namespace crkhacc::io {

struct MultiTierConfig {
  int rank = 0;
  int checkpoint_window = 2;  ///< keep this many most-recent steps
  int max_write_attempts = 4;   ///< verified-write attempts per tier op
  double backoff_base_s = 1e-3; ///< first retry delay (doubles per retry)
  double backoff_max_s = 5e-2;  ///< backoff ceiling
};

/// One checkpoint's accounting.
struct IoRecord {
  std::uint64_t step = 0;
  std::uint64_t bytes = 0;
  double local_seconds = 0.0;  ///< simulation-blocking time
  double pfs_seconds = 0.0;    ///< asynchronous bleed time
  bool bled = false;
};

/// Fault-handling accounting across the writer's lifetime.
struct IoStats {
  std::uint64_t local_retries = 0;    ///< re-attempted node-local writes
  std::uint64_t pfs_retries = 0;      ///< re-attempted PFS writes
  std::uint64_t verify_failures = 0;  ///< read-back CRC mismatches caught
  std::uint64_t bleed_failures = 0;   ///< checkpoints that never completed
  bool degraded_to_direct = false;    ///< node-local tier abandoned
};

class MultiTierWriter {
 public:
  MultiTierWriter(ThrottledStore& local, ThrottledStore& pfs,
                  const MultiTierConfig& config);
  ~MultiTierWriter();

  MultiTierWriter(const MultiTierWriter&) = delete;
  MultiTierWriter& operator=(const MultiTierWriter&) = delete;

  /// Multi-tier path: blocking local write + queued async bleed.
  /// Returns the seconds the simulation was blocked.
  double write_checkpoint(const SnapshotMeta& meta, const Particles& particles);

  /// Baseline: synchronous write directly to the PFS (blocks for the
  /// full shared-channel service time).
  double write_checkpoint_direct(const SnapshotMeta& meta,
                                 const Particles& particles);

  /// Block until every queued bleed and prune has completed — or until
  /// the writer is shut down, whichever comes first.
  void drain();

  /// Stop the bleeder promptly, abandoning any still-queued bleeds, and
  /// release every blocked drain(). Idempotent; the destructor calls it.
  /// drain() first if settled bleeds are required.
  void shutdown();

  /// Accounting snapshot (drain() first for settled pfs numbers).
  std::vector<IoRecord> records() const;

  IoStats stats() const;

  std::uint64_t bytes_written() const;

  static std::string checkpoint_path(std::uint64_t step, int rank);
  static std::string marker_path(std::uint64_t step, int rank);

 private:
  void worker_loop();
  void prune(std::uint64_t newest_step);
  /// Verified write with bounded-backoff retries: write, read back,
  /// compare CRC; returns true once the bytes are provably on `store`.
  bool write_verified(ThrottledStore& store,  const std::string& rel_path,
                      const std::vector<std::uint8_t>& data,
                      std::uint32_t crc, std::uint64_t& retry_counter);
  /// Verified write of payload + CRC marker to the PFS; true on success.
  bool publish_to_pfs(std::uint64_t step,
                      const std::vector<std::uint8_t>& bytes);

  ThrottledStore& local_;
  ThrottledStore& pfs_;
  MultiTierConfig config_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::uint64_t> queue_;  ///< steps awaiting bleed
  std::vector<IoRecord> records_;
  IoStats stats_;
  bool stopping_ = false;
  bool degraded_ = false;  ///< local tier failed; direct PFS mode
  std::size_t in_flight_ = 0;

  std::mutex prune_mutex_;
  std::uint64_t prune_floor_ = 0;  ///< lowest step not yet pruned

  std::thread worker_;
};

}  // namespace crkhacc::io
