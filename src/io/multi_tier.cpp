#include "io/multi_tier.h"

#include <algorithm>
#include <cstdio>

#include "util/assertions.h"
#include "util/timer.h"

namespace crkhacc::io {

std::string MultiTierWriter::checkpoint_path(std::uint64_t step, int rank) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "ckpt/step%06llu/rank%05d.gio",
                static_cast<unsigned long long>(step), rank);
  return buf;
}

std::string MultiTierWriter::marker_path(std::uint64_t step, int rank) {
  return checkpoint_path(step, rank) + ".ok";
}

MultiTierWriter::MultiTierWriter(ThrottledStore& local, ThrottledStore& pfs,
                                 const MultiTierConfig& config)
    : local_(local), pfs_(pfs), config_(config) {
  worker_ = std::thread([this] { worker_loop(); });
}

MultiTierWriter::~MultiTierWriter() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

double MultiTierWriter::write_checkpoint(const SnapshotMeta& meta,
                                         const Particles& particles) {
  const auto bytes = encode_snapshot(meta, particles, /*include_ghosts=*/true);
  Stopwatch watch;
  local_.write(checkpoint_path(meta.step, config_.rank), bytes);
  const double blocked = watch.seconds();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    records_.push_back(IoRecord{meta.step, bytes.size(), blocked, 0.0, false});
    queue_.push_back(meta.step);
  }
  cv_.notify_one();
  return blocked;
}

double MultiTierWriter::write_checkpoint_direct(const SnapshotMeta& meta,
                                                const Particles& particles) {
  const auto bytes = encode_snapshot(meta, particles, /*include_ghosts=*/true);
  Stopwatch watch;
  pfs_.write(checkpoint_path(meta.step, config_.rank), bytes);
  pfs_.write(marker_path(meta.step, config_.rank), {1});
  const double blocked = watch.seconds();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    records_.push_back(
        IoRecord{meta.step, bytes.size(), blocked, blocked, true});
  }
  return blocked;
}

void MultiTierWriter::worker_loop() {
  while (true) {
    std::uint64_t step;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      step = queue_.front();
      queue_.pop_front();
      ++in_flight_;
    }

    // Asynchronous bleed: move the completed file, then stamp the marker.
    Stopwatch watch;
    const auto rel = checkpoint_path(step, config_.rank);
    pfs_.ingest(local_, rel);
    pfs_.write(marker_path(step, config_.rank), {1});
    const double seconds = watch.seconds();

    prune(step);

    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (auto& record : records_) {
        if (record.step == step && !record.bled) {
          record.pfs_seconds = seconds;
          record.bled = true;
          break;
        }
      }
      --in_flight_;
    }
    cv_.notify_all();
  }
}

void MultiTierWriter::prune(std::uint64_t newest_step) {
  // Time-window retention: drop anything older than the last
  // checkpoint_window steps that have fully reached the PFS.
  if (newest_step < static_cast<std::uint64_t>(config_.checkpoint_window)) {
    return;
  }
  const std::uint64_t cutoff =
      newest_step - static_cast<std::uint64_t>(config_.checkpoint_window);
  for (std::uint64_t step = (cutoff > 8 ? cutoff - 8 : 0); step < cutoff;
       ++step) {
    const auto rel = checkpoint_path(step, config_.rank);
    local_.remove(rel);
    pfs_.remove(marker_path(step, config_.rank));
    pfs_.remove(rel);
  }
}

void MultiTierWriter::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

std::vector<IoRecord> MultiTierWriter::records() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

std::uint64_t MultiTierWriter::bytes_written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& record : records_) total += record.bytes;
  return total;
}

}  // namespace crkhacc::io
