// Scenario-farm gate: shared-context throughput, fairness, and bitwise
// job identity.
//
// The farm's claim is that a calibration sweep — N scenarios over a
// common realization — runs materially faster through one shared
// core::SimContext than as N standalone simulations, without changing a
// single bit of any scenario's answer. The farm never overlaps two
// jobs' compute (slices are sequential through one pool), so the whole
// win is duplicated fixed work eliminated: one thread pool instead of N
// spin-ups, one cooling table and one set of FFT plans instead of N
// rebuilds, and one primed initial state that jobs 2..N borrow instead
// of re-drawing and re-priming the identical realization.
//
// Two phases, because the gates want opposite job shapes:
//
//   Phase A (throughput): N single-step calibration microboxes, where
//     IC + priming is a realistic ~1/3 of the per-scenario cost. Gates
//     scenarios/hour through the farm >= 1.3x a serial baseline running
//     the same scenarios one at a time on private contexts (the
//     pre-farm workflow), and every job's final state bitwise equal
//     (memcmp per column) to its standalone run.
//
//   Phase B (fairness + interleaving): fewer jobs, several slices each,
//     so round-robin actually interleaves. Gates the completion-time
//     spread (max/mean <= 1.5), that slices really interleave (job 0's
//     later slices run after job N-1's first), and — the determinism
//     claim that makes the farm safe at all — that sliced, interleaved
//     execution is bitwise identical to standalone monolithic runs.
//
// --quick shrinks both phases and runs as the farm_throughput_smoke
// ctest target, so a scheduler, cache-keying, or slicing regression
// fails the build.
#include <cstdio>
#include <cstring>
#include <chrono>
#include <string>
#include <vector>

#include "comm/world.h"
#include "core/param_file.h"
#include "core/service.h"
#include "core/simulation.h"

using namespace crkhacc;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Calibration-microbox shape: a single coarse PM step over a primed
/// hydro box, so the shared fixed costs (IC draw + exchange + priming)
/// are a realistic fraction of each scenario. rs_cells is kept compact
/// and subcycling off so the evolution side is one force pass, not a
/// subcycle cascade.
core::SimConfig microbox_config(int threads, int steps) {
  core::SimConfig config;
  config.np = 8;
  config.box = 16.0;
  config.ng = 16;
  config.rs_cells = 0.25;
  config.z_init = 30.0;
  config.z_final = 10.0;
  config.num_pm_steps = steps;
  config.bins.max_depth = 0;
  config.hydro = true;
  config.subgrid_on = false;
  config.seed = 4242;
  config.threads = threads;
  return config;
}

/// The sweep workload: job j perturbs the Plummer softening over the
/// shared realization. Softening enters only the evolution (force
/// kernels), never IC generation or solver priming, so every job keys
/// to the SAME cached initial state — the emulator-calibration sweep
/// the farm exists for. Returned as overlay text so the farm and the
/// baseline build their configs through the identical ParamFile path.
std::string overlay_for(int j) {
  char overlay[64];
  std::snprintf(overlay, sizeof overlay, "softening = %.4f",
                0.05 + 0.01 * static_cast<double>(j));
  return overlay;
}

core::SimConfig config_for(const core::SimConfig& base, int j) {
  core::SimConfig config = base;
  const auto params = core::ParamFile::parse(overlay_for(j));
  if (params) params->apply(config);
  return config;
}

template <typename T>
bool same_bits(const std::vector<T>& a, const std::vector<T>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0);
}

bool bitwise_equal(const Particles& a, const Particles& b) {
  return same_bits(a.id, b.id) && same_bits(a.x, b.x) && same_bits(a.y, b.y) &&
         same_bits(a.z, b.z) && same_bits(a.vx, b.vx) &&
         same_bits(a.vy, b.vy) && same_bits(a.vz, b.vz) &&
         same_bits(a.mass, b.mass) && same_bits(a.u, b.u) &&
         same_bits(a.rho, b.rho) && same_bits(a.hsml, b.hsml) &&
         same_bits(a.metal, b.metal) && same_bits(a.species, b.species) &&
         same_bits(a.ghost, b.ghost);
}

/// The pre-farm workflow: each scenario standalone, sequential, with a
/// private context (own pool, own tables, own IC draw + prime).
/// Returns the wall seconds of the whole pass.
double run_serial(const core::SimConfig& base, int jobs,
                  std::vector<Particles>& finals) {
  finals.assign(static_cast<std::size_t>(jobs), Particles{});
  const Clock::time_point t0 = Clock::now();
  for (int j = 0; j < jobs; ++j) {
    const core::SimConfig config = config_for(base, j);
    comm::World world(1);
    world.run([&](comm::Communicator& comm) {
      core::SimContext ctx(config.threads);
      core::Simulation sim(ctx, comm, config);
      sim.initialize();
      const auto result = sim.run();
      if (result.completed) {
        finals[static_cast<std::size_t>(j)] = sim.particles();
      }
    });
  }
  return seconds_since(t0);
}

core::ServiceReport run_farm(const core::SimConfig& base, int jobs,
                             int threads,
                             core::ServiceConfig service = {}) {
  service.threads = threads;
  service.slice_steps = 1;
  core::ScenarioService farm(service);
  for (int j = 0; j < jobs; ++j) {
    core::ScenarioJob job;
    job.name = "soft" + std::to_string(j);
    job.config = base;
    job.params = overlay_for(j);
    farm.submit(job);
  }
  return farm.drain();
}

bool check_bitwise(const core::ServiceReport& report,
                   const std::vector<Particles>& reference,
                   const char* phase) {
  bool ok = true;
  if (!report.aggregate.completed ||
      report.jobs.size() != reference.size()) {
    std::printf("FAIL: %s farm did not complete all %zu jobs\n", phase,
                reference.size());
    ok = false;
  }
  for (std::size_t j = 0; j < report.jobs.size() && j < reference.size();
       ++j) {
    if (!bitwise_equal(report.jobs[j].final_particles, reference[j])) {
      std::printf("FAIL: %s job %s final state differs from its standalone "
                  "run\n", phase, report.jobs[j].name.c_str());
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  const int threads = 8;
  bool ok = true;

  // ------------------------------------------------------------------
  // Phase A: throughput. Single-step sweep jobs; the serial pass is
  // both the timed baseline and the bitwise reference.
  // ------------------------------------------------------------------
  const int jobs_a = quick ? 8 : 12;
  const core::SimConfig base_a = microbox_config(threads, /*steps=*/1);

  std::printf("scenario-farm bench%s\n", quick ? " (quick)" : "");
  std::printf("\n[A] throughput: %d single-step jobs, %zu^3 pairs, "
              "%d threads\n", jobs_a, base_a.np, threads);

  std::vector<Particles> reference_a;
  const double serial_s = run_serial(base_a, jobs_a, reference_a);
  const auto report_a = run_farm(base_a, jobs_a, threads);
  const double farm_s = report_a.wall_seconds;

  const double speedup = farm_s > 0.0 ? serial_s / farm_s : 0.0;
  std::printf("    serial: %7.3f s (%8.1f scenarios/hour)\n", serial_s,
              serial_s > 0.0 ? 3600.0 * jobs_a / serial_s : 0.0);
  std::printf("    farm:   %7.3f s (%8.1f scenarios/hour)\n", farm_s,
              farm_s > 0.0 ? 3600.0 * jobs_a / farm_s : 0.0);
  std::printf("    assets: cooling %llu/%llu hit/miss, initial state "
              "%llu/%llu, fft plans %llu/%llu\n",
              static_cast<unsigned long long>(report_a.assets.cooling_hits),
              static_cast<unsigned long long>(report_a.assets.cooling_misses),
              static_cast<unsigned long long>(
                  report_a.assets.initial_state_hits),
              static_cast<unsigned long long>(
                  report_a.assets.initial_state_misses),
              static_cast<unsigned long long>(report_a.assets.fft_plan_hits),
              static_cast<unsigned long long>(
                  report_a.assets.fft_plan_misses));

  ok = check_bitwise(report_a, reference_a, "[A]") && ok;
  if (static_cast<int>(report_a.assets.initial_state_hits) < jobs_a - 1) {
    std::printf("FAIL: [A] expected %d initial-state cache hits, got %llu "
                "(sweep jobs are not sharing the realization)\n", jobs_a - 1,
                static_cast<unsigned long long>(
                    report_a.assets.initial_state_hits));
    ok = false;
  }
  if (speedup < 1.3) {
    std::printf("FAIL: [A] farm speedup %.2fx below the 1.3x floor\n",
                speedup);
    ok = false;
  } else {
    std::printf("PASS: [A] farm speedup %.2fx >= 1.3x\n", speedup);
  }

  // ------------------------------------------------------------------
  // Phase B: fairness + interleaving. Multi-slice jobs so round-robin
  // has rounds; completion spread and slice order are observable via
  // on_slice, and the sliced runs must still match the monolithic
  // standalone references bit for bit.
  // ------------------------------------------------------------------
  const int jobs_b = quick ? 3 : 4;
  const int steps_b = quick ? 3 : 4;
  const core::SimConfig base_b = microbox_config(threads, steps_b);

  std::printf("\n[B] fairness: %d jobs x %d slices, round-robin\n", jobs_b,
              steps_b);

  std::vector<Particles> reference_b;
  run_serial(base_b, jobs_b, reference_b);

  // Record the global slice order to prove interleaving.
  std::vector<std::uint64_t> slice_order;
  core::ServiceConfig service_b;
  service_b.on_slice = [&](const core::SliceEvent& event) {
    slice_order.push_back(event.job);
  };
  const auto report_b = run_farm(base_b, jobs_b, threads, service_b);
  const double fairness = report_b.fairness_ratio();

  std::printf("    completion seconds:");
  for (const auto& j : report_b.jobs) {
    std::printf(" %.3f", j.completion_seconds);
  }
  std::printf("\n    fairness: %.3f max/mean\n", fairness);

  ok = check_bitwise(report_b, reference_b, "[B]") && ok;

  // Round-robin with equal jobs must visit every job once per round:
  // the first jobs_b slices are jobs 1..jobs_b in submission order, and
  // job 1's last slice comes after every other job has started.
  bool interleaved = slice_order.size() ==
                     static_cast<std::size_t>(jobs_b) *
                         static_cast<std::size_t>(steps_b);
  for (int j = 0; interleaved && j < jobs_b; ++j) {
    interleaved = slice_order[static_cast<std::size_t>(j)] ==
                  report_b.jobs[static_cast<std::size_t>(j)].id;
  }
  if (!interleaved) {
    std::printf("FAIL: [B] slices did not interleave round-robin "
                "(%zu slice events)\n", slice_order.size());
    ok = false;
  } else {
    std::printf("PASS: [B] %zu slices interleaved round-robin\n",
                slice_order.size());
  }

  if (fairness <= 0.0 || fairness > 1.5) {
    std::printf("FAIL: [B] fairness ratio %.3f outside (0, 1.5]\n", fairness);
    ok = false;
  } else {
    std::printf("PASS: [B] fairness ratio %.3f <= 1.5\n", fairness);
  }

  if (ok) std::printf("\nALL GATES PASS\n");
  return ok ? 0 : 1;
}
