// Ablation (Section IV-A): the separation-of-scales handover.
//
// Sweeps the split scale rs (in PM cells) and measures, for a fixed
// particle cloud: (a) the accuracy of PM + short-range against a direct
// periodic N^2 reference (summed over +-1 images), and (b) the cost of
// the short-range solve, which grows as rs^3 with the cutoff volume.
// This is the design trade the paper solves with its spectrally filtered
// PM: a compact, low-noise handover on a small rs.
#include <cmath>
#include <cstdio>
#include <vector>

#include "common.h"
#include "comm/world.h"
#include "core/exchange.h"
#include "core/particles.h"
#include "cosmology/units.h"
#include "gravity/short_range.h"
#include "mesh/pm_solver.h"
#include "tree/chaining_mesh.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace crkhacc;

namespace {

/// Direct periodic reference force via +-1 minimum-image sum (adequate
/// for clouds spanning << box).
void direct_periodic(const Particles& p, double box, float softening,
                     std::vector<std::array<double, 3>>& forces) {
  forces.assign(p.size(), {0.0, 0.0, 0.0});
  const double soft2 = static_cast<double>(softening) * softening;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (!p.is_owned(i)) continue;
    for (std::size_t j = 0; j < p.size(); ++j) {
      if (!p.is_owned(j) || i == j) continue;
      double dx = static_cast<double>(p.x[i]) - p.x[j];
      double dy = static_cast<double>(p.y[i]) - p.y[j];
      double dz = static_cast<double>(p.z[i]) - p.z[j];
      // Minimum image.
      if (dx > box / 2) dx -= box; else if (dx < -box / 2) dx += box;
      if (dy > box / 2) dy -= box; else if (dy < -box / 2) dy += box;
      if (dz > box / 2) dz -= box; else if (dz < -box / 2) dz += box;
      const double r2 = dx * dx + dy * dy + dz * dz + soft2;
      const double inv_r3 = 1.0 / (r2 * std::sqrt(r2));
      const double f = -units::kGravity * p.mass[j] * inv_r3;
      forces[i][0] += f * dx;
      forces[i][1] += f * dy;
      forces[i][2] += f * dz;
    }
  }
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation — force-split scale: accuracy vs short-range cost");

  const double box = 32.0;
  const std::size_t ng = 32;
  const int n_particles = 600;
  const float softening = 0.2f;

  std::printf("%-10s %-10s %-12s %-14s %-14s %-14s\n", "rs[cells]", "cutoff",
              "pairs/ptcl", "rms err", "p99 err", "short [s]");
  bench::print_rule();

  comm::World world(1);
  world.run([&](comm::Communicator& comm) {
    const comm::CartDecomposition decomp(1, box);
    // Clustered cloud: three Gaussian blobs + background.
    SplitMix64 rng(99);
    Particles base;
    std::uint64_t id = 0;
    for (int blob = 0; blob < 3; ++blob) {
      const double cx = 8.0 + 8.0 * blob;
      for (int i = 0; i < n_particles / 4; ++i) {
        base.push_back(id++, Species::kDarkMatter,
                       static_cast<float>(decomp.wrap(cx + 1.5 * rng.next_gaussian())),
                       static_cast<float>(decomp.wrap(16.0 + 1.5 * rng.next_gaussian())),
                       static_cast<float>(decomp.wrap(16.0 + 1.5 * rng.next_gaussian())),
                       0, 0, 0, 1.0f);
      }
    }
    while (base.size() < static_cast<std::size_t>(n_particles)) {
      base.push_back(id++, Species::kDarkMatter,
                     static_cast<float>(rng.next_double() * box),
                     static_cast<float>(rng.next_double() * box),
                     static_cast<float>(rng.next_double() * box), 0, 0, 0,
                     1.0f);
    }
    std::vector<std::array<double, 3>> reference;
    direct_periodic(base, box, softening, reference);
    double ref_rms = 0.0;
    for (const auto& f : reference) {
      ref_rms += f[0] * f[0] + f[1] * f[1] + f[2] * f[2];
    }
    ref_rms = std::sqrt(ref_rms / static_cast<double>(reference.size()));

    for (double rs_cells : {0.75, 1.0, 1.25, 1.5, 2.0}) {
      Particles p = base;
      mesh::PMSolver pm(comm, decomp,
                        mesh::PMConfig{ng, box, rs_cells, 1e-3});
      const double overload = pm.split().cutoff();
      core::exchange_and_overload(comm, decomp, p, overload);
      pm.apply(comm, p, overload);  // long-range into ax (a=1: no scaling)

      tree::ChainingMesh mesh(decomp.overloaded_box(0, overload),
                              {std::max(overload, 2.0), 64});
      mesh.build(p);
      gravity::GravityConfig gconfig;
      gconfig.softening = softening;
      gpu::FlopRegistry flops;
      Stopwatch watch;
      const auto stats = gravity::compute_short_range(
          p, mesh, &pm.split(), gconfig, 1.0, nullptr, flops);
      const double short_seconds = watch.seconds();

      // Error vs reference over owned particles.
      double err2 = 0.0;
      std::vector<double> errors;
      std::size_t owned = 0;
      for (std::size_t i = 0; i < p.size(); ++i) {
        if (!p.is_owned(i)) continue;
        const double ex = p.ax[i] - reference[i][0];
        const double ey = p.ay[i] - reference[i][1];
        const double ez = p.az[i] - reference[i][2];
        const double err = std::sqrt(ex * ex + ey * ey + ez * ez) / ref_rms;
        err2 += err * err;
        errors.push_back(err);
        ++owned;
      }
      std::sort(errors.begin(), errors.end());
      const double rms = std::sqrt(err2 / static_cast<double>(owned));
      const double p99 = errors[static_cast<std::size_t>(0.99 * errors.size())];
      std::printf("%-10.2f %-10.2f %-12.0f %-14.4f %-14.4f %-14.3f\n",
                  rs_cells, pm.split().cutoff(),
                  static_cast<double>(stats.interactions) /
                      static_cast<double>(owned),
                  rms, p99, short_seconds);
    }
  });
  bench::print_rule();
  std::printf("\nreading: larger rs costs ~rs^3 more pair work; the mesh "
              "alone cannot deliver sub-percent forces, and the pair sum\n"
              "alone cannot reach across the box — the split does both at "
              "a compact cutoff (the paper's low-noise handover).\n");
  return 0;
}
