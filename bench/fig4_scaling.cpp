// Figure 4: strong and weak scaling of the solver.
//
// The paper scales CRK-HACC from 128 to 9,000 Frontier nodes, reporting
// 92% strong- and 95% weak-scaling efficiency and 46.6 billion particles
// processed per second at full scale. We reproduce the experiment's
// *shape* on the simulated machine: the identical rank program runs at
// 1..8 ranks with (weak) fixed per-rank load and (strong) fixed total
// load, timing the solver (short-range + spectral) over early high-z
// steps exactly as Section VI-A does.
//
// Note on the substitute machine: ranks are threads on one physical core,
// so ideal scaling keeps the particles/s *constant* for weak scaling
// (total work grows with ranks on fixed silicon) and shrinks wall time
// proportionally to work for strong scaling. Efficiencies are defined
// against those ideals — the communication/imbalance overheads measured
// are the same ones the real machine pays.
// The load-balance section extends the scaling story to clustered
// matter: on a two-Plummer-sphere problem two of four ranks hold nearly
// all short-range work, and the dynamic balancer (lb_threshold) must
// recover at least 25% of the executed-work imbalance ratio without
// changing a single particle bit. --quick runs only that gate (as the
// fig4_scaling_smoke ctest target).
#include <array>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <vector>

#include "common.h"
#include "comm/world.h"
#include "core/simulation.h"
#include "gravity/short_range.h"
#include "support/clustered_ic.h"

using namespace crkhacc;

namespace {

struct ScalingPoint {
  int ranks;
  double solver_seconds;   ///< max over ranks
  std::uint64_t particles; ///< global particle count
  double gflops;           ///< aggregate kernel GFLOP executed
};

ScalingPoint run_case(int ranks, const core::SimConfig& config) {
  ScalingPoint point{ranks, 0.0, 0, 0.0};
  std::mutex mutex;
  comm::World world(ranks);
  world.run([&](comm::Communicator& comm) {
    core::SimContext ctx(config.threads);
    core::Simulation sim(ctx, comm, config);
    sim.initialize();
    for (int s = 0; s < config.num_pm_steps; ++s) {
      sim.step();
    }
    const double solver_seconds = sim.timers().total(timers::kShortRange) +
                                  sim.timers().total(timers::kLongRange) +
                                  sim.timers().total(timers::kTreeBuild);
    const double max_seconds =
        comm.allreduce_scalar(solver_seconds, comm::ReduceOp::kMax);
    std::int64_t owned = 0;
    const auto& p = sim.particles();
    for (std::size_t i = 0; i < p.size(); ++i) owned += p.is_owned(i);
    const auto total = comm.allreduce_scalar(owned, comm::ReduceOp::kSum);
    const double flops = comm.allreduce_scalar(sim.flops().total_flops(),
                                               comm::ReduceOp::kSum);
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lock(mutex);
      point.solver_seconds = max_seconds;
      point.particles = static_cast<std::uint64_t>(total);
      point.gflops = flops / 1e9;
    }
  });
  return point;
}

// --- dynamic load balancing on clustered matter --------------------------

struct LbPoint {
  double flop_ratio = 0.0;        ///< executed short-range FLOP max/mean
  double imbalance_before = 0.0;  ///< run-average decision-time ratio
  std::uint64_t packets = 0;      ///< work packets shipped, all ranks
  std::uint64_t checksum = 0;     ///< bitwise final-state digest
};

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

LbPoint run_lb_case(double lb_threshold, bool quick) {
  LbPoint point;
  std::mutex mutex;
  comm::World world(4);
  world.run([&](comm::Communicator& comm) {
    core::SimConfig config;
    config.np = 32;
    config.box = 64.0;
    config.ng = 64;
    config.z_init = 20.0;
    config.z_final = 10.0;
    config.num_pm_steps = quick ? 2 : 3;
    config.hydro = false;
    config.subgrid_on = false;
    config.bins.max_depth = 2;
    config.seed = 77;
    config.sph.eta = 0.1f;  // bin width = short-range cutoff, not SPH
    config.lb.threshold = lb_threshold;
    core::SimContext ctx(config.threads);
    core::Simulation sim(ctx, comm, config);

    // Two Plummer spheres in the cores of ranks (0,0) and (1,1) on the
    // 2x2x1 grid; ranks 1 and 2 start nearly empty.
    testsupport::ClusteredIcConfig ic;
    ic.box = config.box;
    ic.count = quick ? 3000 : 6000;
    ic.scale = 4.0;
    ic.seed = 5150;
    ic.center_a = {16.0, 16.0, 32.0};
    ic.center_b = {48.0, 48.0, 32.0};
    Particles p;
    if (comm.rank() == 0) p = testsupport::clustered_two_sphere_ic(ic);
    sim.initialize_from(std::move(p), 0);
    const auto result = sim.run();

    const double local =
        sim.flops().flops_of(gravity::ShortRangeKernel::kName);
    const double peak = comm.allreduce_scalar(local, comm::ReduceOp::kMax);
    const double total = comm.allreduce_scalar(local, comm::ReduceOp::kSum);
    const auto packets = comm.allreduce_scalar(
        static_cast<std::int64_t>(result.lb_packets_migrated),
        comm::ReduceOp::kSum);

    // Bitwise digest: FNV-1a over the id-sorted owned particle state,
    // per rank, then over the rank digests (particles stay home under
    // migration, so per-rank digests must match the unbalanced run's).
    std::map<std::uint64_t, std::array<float, 6>> state;
    const auto& particles = sim.particles();
    for (std::size_t i = 0; i < particles.size(); ++i) {
      if (!particles.is_owned(i)) continue;
      state[particles.id[i]] = {particles.x[i],  particles.y[i],
                                particles.z[i],  particles.vx[i],
                                particles.vy[i], particles.vz[i]};
    }
    std::uint64_t digest = 14695981039346656037ull;
    for (const auto& [id, s] : state) {
      digest = fnv1a(digest, &id, sizeof(id));
      digest = fnv1a(digest, s.data(), s.size() * sizeof(float));
    }
    const auto digests = comm.allgather_value(digest);

    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lock(mutex);
      point.flop_ratio = peak / (total / comm.size());
      point.packets = static_cast<std::uint64_t>(packets);
      if (result.lb_steps > 0) {
        point.imbalance_before =
            result.lb_imbalance_before / static_cast<double>(result.lb_steps);
      }
      point.checksum = 14695981039346656037ull;
      for (const std::uint64_t d : digests) {
        point.checksum = fnv1a(point.checksum, &d, sizeof(d));
      }
    }
  });
  return point;
}

/// Returns the number of failed gates (0 = pass).
int run_lb_gate(bool quick) {
  bench::print_header(
      "Fig. 4 addendum — dynamic load balance on clustered matter");
  std::printf("4 ranks (2x2x1), two Plummer spheres in opposite corner "
              "ranks, gravity only.\n\n");
  std::printf("%-14s %-16s %-16s %-12s %-18s\n", "balancer", "flop max/mean",
              "census ratio", "packets", "state checksum");
  bench::print_rule();
  const LbPoint off = run_lb_case(0.0, quick);
  std::printf("%-14s %-16.3f %-16s %-12llu %016llx\n", "off", off.flop_ratio,
              "-", static_cast<unsigned long long>(off.packets),
              static_cast<unsigned long long>(off.checksum));
  const LbPoint on = run_lb_case(1.2, quick);
  std::printf("%-14s %-16.3f %-16.3f %-12llu %016llx\n", "lb_threshold=1.2",
              on.flop_ratio, on.imbalance_before,
              static_cast<unsigned long long>(on.packets),
              static_cast<unsigned long long>(on.checksum));

  int failures = 0;
  const bool ratio_ok = on.flop_ratio <= 0.75 * off.flop_ratio;
  std::printf("\ngate: balanced ratio %.3f <= 0.75 x unbalanced %.3f — %s\n",
              on.flop_ratio, off.flop_ratio, ratio_ok ? "PASS" : "FAIL");
  failures += !ratio_ok;
  const bool bits_ok = on.checksum == off.checksum && off.packets == 0;
  std::printf("gate: balanced state bitwise identical to unbalanced — %s\n",
              bits_ok ? "PASS" : "FAIL");
  failures += !bits_ok;
  const bool engaged_ok = on.packets > 0;
  std::printf("gate: balancer engaged (packets migrated > 0) — %s\n",
              engaged_ok ? "PASS" : "FAIL");
  failures += !engaged_ok;
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  if (quick) return run_lb_gate(true) == 0 ? 0 : 1;

  const std::vector<int> rank_counts = {1, 2, 4, 8};

  bench::print_header("Fig. 4 — Weak scaling (fixed per-rank load)");
  std::printf("%-8s %-12s %-12s %-14s %-12s %-14s\n", "ranks", "particles",
              "solver[s]", "particles/s", "GFLOP/s", "efficiency");
  bench::print_rule();
  std::vector<ScalingPoint> weak;
  for (int ranks : rank_counts) {
    const auto config = bench::scaled_config(ranks, 8, /*hydro=*/true);
    weak.push_back(run_case(ranks, config));
    const auto& pt = weak.back();
    const double rate = static_cast<double>(pt.particles) *
                        config.num_pm_steps / pt.solver_seconds;
    // Weak ideal on shared silicon: constant aggregate GFLOP rate (the
    // extra ghost work of smaller subdomains is real work, as on the
    // production machine, and is charged to the rate, not to overhead).
    const double gflop_rate = pt.gflops / pt.solver_seconds;
    const double base_rate = weak.front().gflops / weak.front().solver_seconds;
    std::printf("%-8d %-12llu %-12.2f %-14.3e %-12.2f %-14.1f%%\n", ranks,
                static_cast<unsigned long long>(pt.particles),
                pt.solver_seconds, rate, gflop_rate,
                100.0 * gflop_rate / base_rate);
  }
  std::printf("\npaper: 95%% weak-scaling efficiency, 128 -> 9000 nodes; "
              "46.6e9 particles/s at full scale.\n\n");

  bench::print_header("Fig. 4 — Strong scaling (fixed total problem)");
  std::printf("%-8s %-12s %-12s %-12s %-14s %-12s\n", "ranks", "particles",
              "solver[s]", "GFLOP", "GFLOP/s", "efficiency");
  bench::print_rule();
  std::vector<ScalingPoint> strong;
  {
    // Fixed total: the 8-rank weak problem (np chosen for 8 ranks).
    auto config = bench::scaled_config(8, 8, /*hydro=*/true);
    for (int ranks : rank_counts) {
      strong.push_back(run_case(ranks, config));
      const auto& pt = strong.back();
      // Ghost layers make total work grow with rank count (as on the real
      // machine at shrinking subdomains); the FLOP rate isolates the
      // communication/synchronization overhead the figure probes.
      const double gflop_rate = pt.gflops / pt.solver_seconds;
      const double base_rate =
          strong.front().gflops / strong.front().solver_seconds;
      std::printf("%-8d %-12llu %-12.2f %-12.1f %-14.2f %-12.1f%%\n", ranks,
                  static_cast<unsigned long long>(pt.particles),
                  pt.solver_seconds, pt.gflops, gflop_rate,
                  100.0 * gflop_rate / base_rate);
    }
  }
  std::printf("\npaper: 92%% strong-scaling efficiency over nearly two "
              "orders of magnitude in node count.\n");
  std::printf("(efficiency = aggregate kernel-FLOP rate retained relative "
              "to 1 rank; ghost-layer growth at shrinking subdomains is\n"
              " real work and charged to the rate, so the loss isolates "
              "exchange/transpose/synchronization overhead — the quantity\n"
              " the paper's figure demonstrates.)\n\n");

  return run_lb_gate(false) == 0 ? 0 : 1;
}
