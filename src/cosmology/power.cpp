#include "cosmology/power.h"

#include <cmath>
#include <numbers>

#include "util/assertions.h"

namespace crkhacc::cosmo {
namespace {

constexpr double kPi = std::numbers::pi;

/// Fourier transform of the real-space top-hat window.
double tophat_window(double x) {
  if (x < 1e-6) return 1.0 - x * x / 10.0;
  return 3.0 * (std::sin(x) - x * std::cos(x)) / (x * x * x);
}

}  // namespace

PowerSpectrum::PowerSpectrum(const Parameters& params) : params_(params) {
  const double om = params.omega_m;
  const double ob = params.omega_b;
  const double h = params.h;
  const double om_h2 = om * h * h;
  const double ob_h2 = ob * h * h;
  theta27_sq_ = (params.t_cmb / 2.7) * (params.t_cmb / 2.7);

  // EH98 eq. 26: approximate sound horizon in Mpc.
  sound_horizon_ =
      44.5 * std::log(9.83 / om_h2) / std::sqrt(1.0 + 10.0 * std::pow(ob_h2, 0.75));

  // EH98 eq. 31: baryon suppression of the effective shape parameter.
  const double f_b = ob / om;
  alpha_gamma_ = 1.0 - 0.328 * std::log(431.0 * om_h2) * f_b +
                 0.38 * std::log(22.3 * om_h2) * f_b * f_b;

  norm_ = 1.0;
  const double sigma8_now = sigma_unnormalized(8.0);
  CHECK(sigma8_now > 0.0);
  norm_ = (params.sigma8 * params.sigma8) / (sigma8_now * sigma8_now);
}

double PowerSpectrum::transfer(double k) const {
  if (k <= 0.0) return 1.0;
  const double h = params_.h;
  const double om_h2 = params_.omega_m * h * h;
  // k arrives in h/Mpc; EH98 fit uses 1/Mpc.
  const double k_mpc = k * h;

  // EH98 eq. 30: scale-dependent effective shape parameter.
  const double ks = k_mpc * sound_horizon_;
  const double gamma_eff =
      params_.omega_m * h *
      (alpha_gamma_ + (1.0 - alpha_gamma_) / (1.0 + std::pow(0.43 * ks, 4.0)));

  // EH98 eqs. 28-29.
  const double q = k_mpc * theta27_sq_ / (gamma_eff * h);
  const double l0 = std::log(2.0 * std::numbers::e + 1.8 * q);
  const double c0 = 14.2 + 731.0 / (1.0 + 62.5 * q);
  (void)om_h2;
  return l0 / (l0 + c0 * q * q);
}

double PowerSpectrum::operator()(double k) const {
  if (k <= 0.0) return 0.0;
  const double t = transfer(k);
  return norm_ * std::pow(k, params_.n_s) * t * t;
}

double PowerSpectrum::delta2(double k) const {
  return k * k * k * (*this)(k) / (2.0 * kPi * kPi);
}

double PowerSpectrum::sigma_unnormalized(double r) const {
  // sigma^2(r) = int dlnk Delta^2(k) W^2(kR); log-space trapezoid over a
  // generous k range.
  const double lnk_lo = std::log(1e-5);
  const double lnk_hi = std::log(1e3);
  const int n = 2048;
  const double dlnk = (lnk_hi - lnk_lo) / n;
  double sum = 0.0;
  for (int i = 0; i <= n; ++i) {
    const double k = std::exp(lnk_lo + i * dlnk);
    const double w = tophat_window(k * r);
    const double val = delta2(k) * w * w;
    sum += (i == 0 || i == n) ? 0.5 * val : val;
  }
  return std::sqrt(sum * dlnk);
}

double PowerSpectrum::sigma(double r) const { return sigma_unnormalized(r); }

}  // namespace crkhacc::cosmo
