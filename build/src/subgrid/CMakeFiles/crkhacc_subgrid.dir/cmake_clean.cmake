file(REMOVE_RECURSE
  "CMakeFiles/crkhacc_subgrid.dir/cooling.cpp.o"
  "CMakeFiles/crkhacc_subgrid.dir/cooling.cpp.o.d"
  "CMakeFiles/crkhacc_subgrid.dir/model.cpp.o"
  "CMakeFiles/crkhacc_subgrid.dir/model.cpp.o.d"
  "libcrkhacc_subgrid.a"
  "libcrkhacc_subgrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crkhacc_subgrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
