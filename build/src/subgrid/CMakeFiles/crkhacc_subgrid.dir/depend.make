# Empty dependencies file for crkhacc_subgrid.
# This may be replaced when dependencies are built.
