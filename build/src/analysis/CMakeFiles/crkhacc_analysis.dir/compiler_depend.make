# Empty compiler generated dependencies file for crkhacc_analysis.
# This may be replaced when dependencies are built.
