#include "analysis/halos.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace crkhacc::analysis {

std::vector<Halo> halo_catalog(const Particles& particles,
                               const FofResult& groups,
                               const comm::Box3* owned_box) {
  std::vector<Halo> catalog;
  catalog.reserve(groups.num_groups());
  for (const auto& members : groups.groups) {
    Halo halo;
    halo.count = members.size();
    halo.tag = std::numeric_limits<std::uint64_t>::max();
    for (std::uint32_t i : members) {
      const double m = particles.mass[i];
      halo.mass += m;
      halo.tag = std::min(halo.tag, particles.id[i]);
      halo.center[0] += m * particles.x[i];
      halo.center[1] += m * particles.y[i];
      halo.center[2] += m * particles.z[i];
      halo.velocity[0] += m * particles.vx[i];
      halo.velocity[1] += m * particles.vy[i];
      halo.velocity[2] += m * particles.vz[i];
      if (particles.is_gas(i)) {
        halo.gas_mass += m;
      } else if (particles.species[i] ==
                 static_cast<std::uint8_t>(Species::kStar)) {
        halo.star_mass += m;
      }
    }
    if (halo.mass <= 0.0) continue;
    for (int d = 0; d < 3; ++d) {
      halo.center[d] /= halo.mass;
      halo.velocity[d] /= halo.mass;
    }
    for (std::uint32_t i : members) {
      const double dx = particles.x[i] - halo.center[0];
      const double dy = particles.y[i] - halo.center[1];
      const double dz = particles.z[i] - halo.center[2];
      halo.radius = std::max(halo.radius,
                             std::sqrt(dx * dx + dy * dy + dz * dz));
    }
    if (owned_box && !owned_box->contains(halo.center)) continue;
    catalog.push_back(halo);
  }
  std::sort(catalog.begin(), catalog.end(),
            [](const Halo& a, const Halo& b) { return a.mass > b.mass; });
  return catalog;
}

std::vector<std::size_t> mass_function(const std::vector<Halo>& halos,
                                       double m_lo, double m_hi,
                                       std::size_t bins) {
  std::vector<std::size_t> counts(bins, 0);
  if (bins == 0 || m_hi <= m_lo) return counts;
  const double log_lo = std::log10(m_lo);
  const double log_hi = std::log10(m_hi);
  for (const auto& halo : halos) {
    if (halo.mass <= 0.0) continue;
    const double t = (std::log10(halo.mass) - log_lo) / (log_hi - log_lo);
    if (t < 0.0 || t >= 1.0) continue;
    ++counts[static_cast<std::size_t>(t * static_cast<double>(bins))];
  }
  return counts;
}

}  // namespace crkhacc::analysis
